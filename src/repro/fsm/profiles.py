"""The shipped verification profiles: machine × retry policy × scenario.

A profile binds one of the transition tables to the retry parameters a
real resolver class ships with (:mod:`repro.resolvers.retry`) and to
the paper's testbed scenario (§3: a ``cachetest.net`` zone served by
two in-bailiwick authoritatives). That triple is everything the static
verifier needs to compute a worst-case per-client-query amplification
bound and cross-check it against the §6 / Figure 16 measurements — no
simulator run involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.fsm.forwarding import FORWARDING_MACHINE
from repro.fsm.machine import Machine
from repro.fsm.resolution import RESOLUTION_MACHINE
from repro.resolvers.retry import (
    RetryPolicy,
    bind_profile,
    forwarder_profile,
    unbound_profile,
)

#: The paper's testbed serves the target zone from two authoritatives
#: (ns1/ns2.cachetest.net); forwarders in the measured population
#: likewise typically carry two upstream recursives.
DEFAULT_SERVERS = 2


@dataclass(frozen=True)
class VerifyProfile:
    """One shipped (machine, policy, scenario) triple to model-check."""

    name: str
    machine: Machine
    policy: RetryPolicy
    #: Servers in the queried set (authoritatives or upstreams).
    servers: int = DEFAULT_SERVERS
    #: Concurrent resolution tasks the profile's configuration spawns
    #: against the target zone for one client query (sub-resolutions).
    tasks: int = 1
    #: Where the task count comes from, for reports.
    task_breakdown: str = "main resolution only"
    #: The paper's measured per-client-query count against the target
    #: zone under full failure (§6, Figure 16); None = not measured.
    paper_attack_queries: Optional[float] = None


def shipped_profiles() -> Tuple[VerifyProfile, ...]:
    """The profiles ``repro verify`` checks on every run."""
    return (
        VerifyProfile(
            name="bind",
            machine=RESOLUTION_MACHINE,
            policy=bind_profile(),
            tasks=1,
            task_breakdown=(
                "one resolution task; the parent re-query opens a second "
                "deadline-bounded round on the same question"
            ),
            # Figure 16: BIND sends ~3 queries normally, ~12 when every
            # authoritative is unreachable.
            paper_attack_queries=12.0,
        ),
        VerifyProfile(
            name="unbound",
            machine=RESOLUTION_MACHINE,
            policy=unbound_profile(),
            # Unbound's configuration (chase_ns_aaaa + requery_delegation,
            # see run_software_study) multiplies the retry schedule across
            # six tasks that all hit the dead target zone: the main
            # question, AAAA chases for both in-bailiwick nameservers,
            # the delegation NS re-query, and A re-queries for both
            # nameservers.
            tasks=6,
            task_breakdown=(
                "main + 2 AAAA-for-NS chases + NS re-query + 2 A re-queries"
            ),
            # Figure 16: Unbound's AAAA-for-NS chatter drives ~46 queries
            # per client query under full failure.
            paper_attack_queries=46.0,
        ),
        VerifyProfile(
            name="forwarder",
            machine=FORWARDING_MACHINE,
            policy=forwarder_profile(),
            tasks=1,
            task_breakdown="one relay per client query",
            # §6.2 bounds forwarder amplification by the upstream fan-out
            # itself; the paper gives no single per-query figure, so the
            # bound is pinned by the calibration test instead.
            paper_attack_queries=None,
        ),
    )
