"""The forwarder relay lifecycle as a transition table.

``R1`` in the paper's Figure 1: home-router/CPE boxes relay each client
query to an upstream set, retrying the next upstream on timeout or
SERVFAIL. The ``budget_left`` self-loop is the per-hop amplification of
§6.2 — one client query fans out across the whole upstream set, at most
``total_budget(upstreams)`` sends (annotated for the verifier).

Payload conventions (``event_payload``): ``UPSTREAM_SERVFAIL`` and
``UPSTREAM_FINAL`` carry the upstream response message.
"""

from __future__ import annotations

from typing import Any

from repro.fsm.machine import Machine, State, Transition

# States ---------------------------------------------------------------
START = "START"
FORWARDING = "FORWARDING"
DONE = "DONE"

# Events ---------------------------------------------------------------
BEGIN = "begin"
TIMEOUT = "timeout"
UPSTREAM_SERVFAIL = "upstream_servfail"
UPSTREAM_FINAL = "upstream_final"


def _budget_left(state: Any) -> bool:
    return state.attempt < state.forwarder.config.retry.total_budget(
        len(state.forwarder.upstreams)
    )


GUARDS = {"budget_left": _budget_left}

ACTIONS = {
    "send_upstream": lambda state: state.forwarder._send_upstream(state),
    "respond_servfail": lambda state: state.forwarder._respond_servfail(state),
    "relay_response": lambda state: state.forwarder._relay_response(
        state, state.event_payload
    ),
}


def _relay_rows(event: str) -> tuple:
    """Retry while budget remains, else terminate."""
    terminal_action = (
        "respond_servfail" if event in (BEGIN, TIMEOUT) else "relay_response"
    )
    state = START if event == BEGIN else FORWARDING
    return (
        Transition(state, event, FORWARDING, guard="budget_left",
                   action="send_upstream", sends=1, bound="total_budget"),
        Transition(state, event, DONE, action=terminal_action),
    )


FORWARDING_MACHINE = Machine(
    name="forwarding",
    start=START,
    states=(
        State(START),
        State(FORWARDING),
        State(DONE, terminal=True),
    ),
    events=(BEGIN, TIMEOUT, UPSTREAM_SERVFAIL, UPSTREAM_FINAL),
    transitions=(
        *_relay_rows(BEGIN),
        *_relay_rows(TIMEOUT),
        # A SERVFAIL from one upstream: try the next one; once the
        # budget is spent, the last SERVFAIL is relayed to the client.
        *_relay_rows(UPSTREAM_SERVFAIL),
        Transition(FORWARDING, UPSTREAM_FINAL, DONE, action="relay_response"),
    ),
    guards=GUARDS,
    actions=ACTIONS,
)

COMPILED_FORWARDING = FORWARDING_MACHINE.compile()
