"""Graphviz DOT export for the transition tables.

``repro verify --dot DIR`` writes one ``.dot`` per shipped profile;
the renders committed under ``docs/fsm/`` are regenerated the same way
so review diffs show protocol changes as graph diffs. Pure string
assembly — graphviz itself is not required (or imported).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.fsm.machine import Machine


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def machine_to_dot(
    machine: Machine,
    title: Optional[str] = None,
    caption: Sequence[str] = (),
) -> str:
    """Render ``machine`` as a DOT digraph.

    ``title`` overrides the graph name; ``caption`` lines (profile
    parameters, computed bounds) are appended to the graph label.
    """
    name = title or machine.name
    label_lines = [name, *caption]
    lines = [
        f'digraph "{_escape(name)}" {{',
        "  rankdir=LR;",
        f'  label="{_escape(chr(10).join(label_lines))}";',
        "  labelloc=t;",
        '  node [shape=circle, fontname="Helvetica", fontsize=11];',
        '  edge [fontname="Helvetica", fontsize=9];',
        '  __start [shape=point, width=0.15, label=""];',
    ]
    terminals = machine.terminal_names()
    for state in machine.states:
        shape = "doublecircle" if state.name in terminals else "circle"
        lines.append(f'  "{_escape(state.name)}" [shape={shape}];')
    lines.append(f'  __start -> "{_escape(machine.start)}";')
    for row in machine.transitions:
        label = row.label()
        attrs = [f'label="{_escape(label)}"']
        if row.sends:
            # Query-emitting rows are what the verifier bounds; render
            # them bold with their budget annotation.
            bound = f" <= {row.bound}" if row.bound else ""
            attrs = [
                f'label="{_escape(f"{label}{chr(10)}sends={row.sends}{bound}")}"',
                "style=bold",
            ]
        lines.append(
            f'  "{_escape(row.state)}" -> "{_escape(row.target)}" '
            f"[{', '.join(attrs)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
