"""The table-driven state-machine substrate.

A :class:`Machine` is pure data: a frozen table of states, events, and
ordered transitions whose guards and actions are referenced *by name*.
The table can therefore be model-checked without running the simulator
(``repro verify``, :mod:`repro.fsm.verify`) and rendered to DOT
(:mod:`repro.fsm.dot`), while :meth:`Machine.compile` turns it into the
dispatch structure the resolvers execute on the hot path.

Execution contract
------------------

* The driven context object (a resolution task, a forwarded query)
  carries its current state in an ``fsm_state`` attribute and the
  event's payload in ``event_payload``. Only the compiled driver writes
  ``fsm_state`` — the ``fsm-discipline`` lint rule enforces that
  statically.
* Transitions for one ``(state, event)`` pair are evaluated in table
  order; the first row whose guard passes (or that has no guard) fires.
  The driver sets the target state *before* running the row's action,
  so actions may dispatch follow-up events re-entrantly.
* Dispatch on a terminal state is a no-op (the late-timer/late-response
  idiom: every ``if self.done: return`` guard collapses into this rule).
* An event with no row and no ``ignores`` entry raises
  :class:`StuckMachineError` — unmodeled behavior fails loudly instead
  of silently diverging from the verified graph.

Guard/action callables receive the context object and must be
deterministic given the context and simulator state; guards must not
schedule or send (the verifier cannot see effects, only the table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Tuple,
)

#: A guard predicate / transition action over the driven context.
Guard = Callable[[Any], bool]
Action = Callable[[Any], None]


class MachineError(Exception):
    """A structurally unusable machine table."""


class StuckMachineError(MachineError):
    """An event arrived in a state with no matching transition."""


@dataclass(frozen=True)
class State:
    """One named state; terminal states accept no further events."""

    name: str
    terminal: bool = False


@dataclass(frozen=True)
class Transition:
    """One row of the table: ``state × event [guard] → target / action``.

    ``sends`` and ``bound`` are static annotations for the verifier:
    ``sends`` counts upstream queries emitted when the row fires, and
    ``bound`` names the policy budget that caps how often a cyclic row
    can fire within one resolution (every query-emitting cycle must
    carry one — that is the bounded-amplification check).
    """

    state: str
    event: str
    target: str
    guard: Optional[str] = None
    action: Optional[str] = None
    sends: int = 0
    bound: Optional[str] = None

    def label(self) -> str:
        """Human-readable row label (DOT edges, findings)."""
        text = self.event
        if self.guard is not None:
            text += f" [{self.guard}]"
        if self.action is not None:
            text += f" / {self.action}"
        return text


@dataclass(frozen=True)
class Machine:
    """A complete, immutable transition table plus its code bindings.

    Structural validity is *not* enforced here — :func:`repro.fsm.verify
    .verify_machine` reports problems as findings, and :meth:`compile`
    raises :class:`MachineError` before a broken table can execute.
    """

    name: str
    start: str
    states: Tuple[State, ...]
    events: Tuple[str, ...]
    transitions: Tuple[Transition, ...]
    guards: Mapping[str, Guard] = field(default_factory=dict)
    actions: Mapping[str, Action] = field(default_factory=dict)
    #: ``(state, event)`` pairs that are deliberate no-ops, either with
    #: no rows at all or as the fall-through when every row is guarded.
    ignores: FrozenSet[Tuple[str, str]] = frozenset()

    # ------------------------------------------------------------------
    def state_names(self) -> Tuple[str, ...]:
        return tuple(state.name for state in self.states)

    def terminal_names(self) -> FrozenSet[str]:
        return frozenset(s.name for s in self.states if s.terminal)

    def rows(self, state: str, event: str) -> Tuple[Transition, ...]:
        return tuple(
            t for t in self.transitions if t.state == state and t.event == event
        )

    def structural_errors(self) -> List[str]:
        """Name-resolution problems that make the table unexecutable."""
        errors: List[str] = []
        names = set(self.state_names())
        if len(names) != len(self.states):
            errors.append("duplicate state names")
        if self.start not in names:
            errors.append(f"start state `{self.start}` not declared")
        events = set(self.events)
        if len(events) != len(self.events):
            errors.append("duplicate event names")
        for t in self.transitions:
            where = f"{t.state}--{t.label()}-->{t.target}"
            if t.state not in names:
                errors.append(f"{where}: unknown source state")
            if t.target not in names:
                errors.append(f"{where}: unknown target state")
            if t.event not in events:
                errors.append(f"{where}: unknown event")
            if t.guard is not None and t.guard not in self.guards:
                errors.append(f"{where}: unbound guard `{t.guard}`")
            if t.action is not None and t.action not in self.actions:
                errors.append(f"{where}: unbound action `{t.action}`")
        for state, event in sorted(self.ignores):
            if state not in names:
                errors.append(f"ignore ({state}, {event}): unknown state")
            if event not in events:
                errors.append(f"ignore ({state}, {event}): unknown event")
        return errors

    def compile(self) -> "CompiledMachine":
        errors = self.structural_errors()
        if errors:
            raise MachineError(
                f"machine `{self.name}`: " + "; ".join(errors)
            )
        return CompiledMachine(self)


#: One compiled row: (guard fn or None, action fn or None, target, row).
_CompiledRow = Tuple[Optional[Guard], Optional[Action], str, Transition]


class CompiledMachine:
    """The executable form: name-resolved rows keyed by (state, event).

    Instances are shared (module-level singletons per machine); the
    per-task mutable part is just the ``fsm_state`` string on the
    context, so driving a million tasks costs one dict lookup and a
    short tuple scan per event.
    """

    __slots__ = ("machine", "start", "terminals", "_table", "_ignores")

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.start = machine.start
        self.terminals = machine.terminal_names()
        table: Dict[Tuple[str, str], Tuple[_CompiledRow, ...]] = {}
        for t in machine.transitions:
            guard = machine.guards[t.guard] if t.guard is not None else None
            action = (
                machine.actions[t.action] if t.action is not None else None
            )
            key = (t.state, t.event)
            table[key] = table.get(key, ()) + ((guard, action, t.target, t),)
        self._table = table
        self._ignores = machine.ignores

    # ------------------------------------------------------------------
    def begin(self, ctx: Any) -> None:
        """Place a fresh context in the start state."""
        ctx.fsm_state = self.start

    def dispatch(
        self, ctx: Any, event: str, payload: Any = None
    ) -> Optional[Transition]:
        """Feed ``event`` to ``ctx``; returns the fired row (or None).

        The payload rides on ``ctx.event_payload`` while the row is
        selected and its action runs, and is restored afterwards (events
        nest: an action may re-dispatch — the target state is committed
        first).
        """
        state = ctx.fsm_state
        if state in self.terminals:
            return None
        rows = self._table.get((state, event))
        if rows is not None:
            previous = ctx.event_payload
            ctx.event_payload = payload
            try:
                for guard, action, target, row in rows:
                    if guard is None or guard(ctx):
                        ctx.fsm_state = target
                        if action is not None:
                            action(ctx)
                        return row
            finally:
                ctx.event_payload = previous
        if (state, event) in self._ignores:
            return None
        raise StuckMachineError(
            f"machine `{self.machine.name}`: no transition for event "
            f"`{event}` in state `{state}`"
        )
