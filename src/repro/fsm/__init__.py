"""Table-driven state machines for the resolver lifecycles.

The package splits "what the protocol does" from "how the code does
it": :mod:`repro.fsm.machine` is the substrate (frozen transition
tables compiled into dispatchers), :mod:`repro.fsm.resolution` and
:mod:`repro.fsm.forwarding` are the shipped machines the resolvers in
:mod:`repro.resolvers` execute, and :mod:`repro.fsm.verify` is the
static model checker behind ``repro verify`` (reachability, liveness,
determinism, and worst-case retry-amplification bounds — the paper's
§6 query-count analysis, computed from the tables without running the
simulator). :mod:`repro.fsm.dot` renders the graphs for docs/review.
"""

from repro.fsm.machine import (
    CompiledMachine,
    Machine,
    MachineError,
    State,
    StuckMachineError,
    Transition,
)

__all__ = [
    "CompiledMachine",
    "Machine",
    "MachineError",
    "State",
    "StuckMachineError",
    "Transition",
]
