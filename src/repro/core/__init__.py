"""The paper's contribution: measurement methodology and experiments.

* :mod:`~repro.core.classification` — the AA/CC/AC/CA answer classifier
  (paper §3.4), TTL-manipulation detection, cache-fragmentation markers,
  and the public-resolver attribution of cache misses (§3.5).
* :mod:`~repro.core.metrics` — client-experience and authoritative-side
  aggregations behind every figure.
* :mod:`~repro.core.testbed` — assembles a complete measurement world
  (zone tree, authoritatives, population, attack schedule, zone rotation).
* :mod:`~repro.core.experiments` — one runner per paper experiment.
"""

from repro.core.classification import (
    AnswerClass,
    ClassificationTable,
    ClassifiedAnswer,
    RotationSchedule,
    classify_answers,
    classify_misses_by_resolver,
)
from repro.core.metrics import (
    LatencyQuantiles,
    latency_by_round,
    responses_by_round,
    round_index_of,
)
from repro.core.testbed import Testbed, TestbedConfig

__all__ = [
    "AnswerClass",
    "ClassificationTable",
    "ClassifiedAnswer",
    "LatencyQuantiles",
    "RotationSchedule",
    "Testbed",
    "TestbedConfig",
    "classify_answers",
    "classify_misses_by_resolver",
    "latency_by_round",
    "responses_by_round",
    "round_index_of",
]
