"""DDoS emulation experiments A–I (paper Table 4, §5–§6).

Each experiment warms caches for some number of rounds, then drops a
fraction of inbound packets at the measurement zone's authoritatives for
an hour, while probing continues every 10 minutes. The result object
carries every series the paper plots from these runs: client outcomes
over time (Figures 6/8/14), answer-class timeseries (Figure 7), latency
quantiles (Figures 9/15), authoritative load by query kind (Figure 10),
per-probe amplification (Figure 11), and unique recursives over time
(Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.clients.population import PopulationConfig
from repro.core.classification import (
    AnswerClass,
    ClassifiedAnswer,
    classify_answers,
)
from repro.core.metrics import (
    LatencyQuantiles,
    amplification_factor,
    authoritative_load_by_round,
    failure_fraction,
    latency_by_round,
    per_probe_amplification,
    responses_by_round,
    round_index_of,
    unique_rn_by_round,
)
from repro.core.testbed import Testbed, TestbedConfig
from repro.simcore.events import DEFAULT_QUEUE_BACKEND
from repro.obs import ObsSpec
from repro.resolvers.stub import StubAnswer


@dataclass
class DDoSSpec:
    """One row of Table 4 (times in minutes, like the paper's table)."""

    key: str
    ttl: int
    ddos_start_min: float
    ddos_duration_min: float
    queries_before: int
    total_duration_min: float
    probe_interval_min: float
    loss_fraction: float
    servers: str  # "both" or "one"
    # Extra mean queueing delay for surviving packets during the attack
    # (the §5.1 future-work extension; 0 matches the paper's emulation).
    queue_delay: float = 0.0

    @property
    def round_seconds(self) -> float:
        return self.probe_interval_min * 60.0

    @property
    def attack_window(self) -> Tuple[float, float]:
        start = self.ddos_start_min * 60.0
        return (start, start + self.ddos_duration_min * 60.0)

    def describe(self) -> str:
        which = "both NSes" if self.servers == "both" else "one NS"
        return (
            f"Experiment {self.key}: TTL {self.ttl}s, "
            f"{self.loss_fraction:.0%} loss on {which}, "
            f"attack {self.ddos_start_min:.0f}–"
            f"{self.ddos_start_min + self.ddos_duration_min:.0f} min"
        )


# Table 4, parameters section. Two adjustments match the figures rather
# than the table: Experiment A is "1down" (the authoritatives never
# recover inside the 120-minute run, Figure 6a), and Experiment B runs
# 180 minutes (its figures cover 170; nothing happens after recovery +
# cache lifetime).
DDOS_EXPERIMENTS: Dict[str, DDoSSpec] = {
    "A": DDoSSpec("A", 3600, 10, 110, 1, 120, 10, 1.00, "both"),
    "B": DDoSSpec("B", 3600, 60, 60, 6, 180, 10, 1.00, "both"),
    "C": DDoSSpec("C", 1800, 60, 60, 6, 180, 10, 1.00, "both"),
    "D": DDoSSpec("D", 1800, 60, 60, 6, 180, 10, 0.50, "one"),
    "E": DDoSSpec("E", 1800, 60, 60, 6, 180, 10, 0.50, "both"),
    "F": DDoSSpec("F", 1800, 60, 60, 6, 180, 10, 0.75, "both"),
    "G": DDoSSpec("G", 300, 60, 60, 6, 180, 10, 0.75, "both"),
    "H": DDoSSpec("H", 1800, 60, 60, 6, 180, 10, 0.90, "both"),
    "I": DDoSSpec("I", 60, 60, 60, 6, 180, 10, 0.90, "both"),
}


@dataclass
class DDoSResult:
    """Raw results plus derived series for one DDoS experiment."""

    spec: DDoSSpec
    answers: List[StubAnswer]
    classified: List[ClassifiedAnswer]
    testbed: Testbed = field(repr=False)

    @property
    def timeline_points(self):
        """Flight-recorder timeline (empty without a ``TimelineSpec``).

        Works against the live testbed and the detached
        :class:`~repro.runner.results.TestbedSnapshot` alike.
        """
        return self.testbed.timeline_points

    # ------------------------------------------------------------------
    # Client-side series
    # ------------------------------------------------------------------
    def outcomes_by_round(self) -> Dict[int, Dict[str, int]]:
        """Figures 6/8/14: OK / SERVFAIL / no-answer per round."""
        return responses_by_round(self.answers, self.spec.round_seconds)

    def class_timeseries(self) -> Dict[int, Dict[str, int]]:
        """Figure 7: AA/CC/CA(+AC) per round."""
        series: Dict[int, Dict[str, int]] = {}
        for item in self.classified:
            bucket = series.setdefault(
                round_index_of(item.time, self.spec.round_seconds),
                {"AA": 0, "AC": 0, "CC": 0, "CA": 0},
            )
            if item.answer_class == AnswerClass.WARMUP:
                bucket["AA"] += 1
            else:
                bucket[item.answer_class.value] += 1
        return series

    def latency_series(self) -> List[LatencyQuantiles]:
        """Figures 9/15: latency quantiles per round."""
        return latency_by_round(self.answers, self.spec.round_seconds)

    def failure_fraction_during_attack(self) -> float:
        return failure_fraction(self.answers, self.spec.attack_window)

    def failure_fraction_before_attack(self) -> float:
        return failure_fraction(self.answers, (0.0, self.spec.attack_window[0]))

    # ------------------------------------------------------------------
    # Authoritative-side series
    # ------------------------------------------------------------------
    def authoritative_load(self) -> Dict[int, Dict[str, int]]:
        """Figure 10: query kinds per round at the target authoritatives."""
        return authoritative_load_by_round(
            self.testbed.offered_query_log,
            self.testbed.origin,
            self.testbed.test_ns_names,
            self.spec.round_seconds,
        )

    def amplification(self) -> float:
        """§6.1's offered-load multiplier (attack vs pre-attack rounds)."""
        load = self.authoritative_load()
        start, end = self.spec.attack_window
        round_seconds = self.spec.round_seconds
        normal = [
            index
            for index in load
            if index * round_seconds < start and index > 0
        ]
        if not normal:
            # Attack starting in round 1 (Experiment A): the warm-up
            # round is the only pre-attack reference.
            normal = [index for index in load if index * round_seconds < start]
        attack = [
            index
            for index in load
            if start <= index * round_seconds < end
        ]
        return amplification_factor(load, normal, attack)

    def unique_rn(self) -> Dict[int, int]:
        """Figure 12: unique Rn addresses per round."""
        return unique_rn_by_round(
            self.testbed.offered_query_log, self.spec.round_seconds
        )

    def per_probe(self):
        """Figure 11: per-probe Rn fan-out and query amplification."""
        return per_probe_amplification(
            self.testbed.offered_query_log,
            self.testbed.origin,
            self.spec.round_seconds,
        )


def run_ddos(
    spec: DDoSSpec,
    probe_count: int = 1500,
    seed: int = 42,
    population: Optional[PopulationConfig] = None,
    wire_format: bool = False,
    obs: Optional[ObsSpec] = None,
    attack_load=None,
    defense=None,
    queue_backend: str = DEFAULT_QUEUE_BACKEND,
) -> DDoSResult:
    """Run one Table 4 experiment end to end.

    Queries are offered before (``queries_before`` rounds), during, and
    after the attack, per the paper's timeline; the offered query load at
    the authoritatives is measured before the attack drop (the drop
    happens at the network, mirroring iptables at the last hop).

    ``obs`` enables the observability layers; with metrics on, the
    registry is snapshotted at every round boundary plus once after the
    run (the grace-period tail, labelled with the round count).

    ``attack_load`` (an :class:`~repro.attackload.AttackLoadSpec`) adds
    adversarial query streams and ``defense`` (a
    :class:`~repro.defense.DefenseSpec`) arms the measurement-zone
    authoritatives; with both None and ``loss_fraction`` > 0 this is
    exactly the paper's axiomatic-drop experiment. A spec with
    ``loss_fraction`` 0 schedules no drop window at all — the
    defense-study runs use that to let loss emerge from saturation
    instead.
    """
    population_config = population or PopulationConfig(probe_count=probe_count)
    testbed = Testbed(
        TestbedConfig(
            seed=seed,
            zone_ttl=spec.ttl,
            population=population_config,
            wire_format=wire_format,
            obs=obs,
            attack_load=attack_load,
            defense=defense,
            queue_backend=queue_backend,
        )
    )
    duration = spec.total_duration_min * 60.0
    attack_start, attack_end = spec.attack_window
    if spec.loss_fraction > 0:
        testbed.add_attack(
            attack_start,
            attack_end - attack_start,
            spec.loss_fraction,
            servers=spec.servers,
            label=f"exp-{spec.key}",
            queue_delay=spec.queue_delay,
        )
    testbed.schedule_rotations(duration)
    testbed.schedule_churn(duration)
    rounds = int(spec.total_duration_min / spec.probe_interval_min)
    testbed.schedule_probing(0.0, spec.round_seconds, rounds)
    testbed.schedule_metric_snapshots(spec.round_seconds, rounds)
    testbed.run(duration)
    testbed.take_metric_snapshot(rounds)

    answers = testbed.population.results
    _table, classified = classify_answers(answers, spec.ttl, testbed.rotation)
    return DDoSResult(
        spec=spec, answers=answers, classified=classified, testbed=testbed
    )
