"""Appendix F: one probe's retry amplification, dissected.

Reproduces the paper's probe 28477 case study (Table 7, Figure 17): a
probe with three first-hop recursives (R1a–R1c), all forwarding into a
shared pool of eight last-layer recursives (Rn1–Rn8), which query two
authoritatives. Experiment I's conditions apply: TTL 60 s, 90% loss on
both authoritatives for an hour in the middle of the run.

The result is a per-round table of the client view (queries, answers,
distinct R1s answering) against the authoritative view (offered queries,
delivered answers, distinct ATs, distinct Rn, unique Rn–AT pairs, top-2
Rn query counts).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType
from repro.netem.attack import AttackSchedule, AttackWindow
from repro.netem.link import PerHostLatency
from repro.netem.transport import Network
from repro.resolvers.forwarder import ForwarderConfig, ForwardingResolver
from repro.resolvers.recursive import RecursiveResolver, ResolverConfig
from repro.resolvers.retry import bind_profile, forwarder_profile, unbound_profile
from repro.resolvers.stub import StubAnswer, StubResolver
from repro.servers.authoritative import AuthoritativeServer
from repro.servers.hierarchy import (
    PROBE_ANSWER_PREFIX,
    ZoneSpec,
    attach_probe_synthesizer,
    build_hierarchy,
)
from repro.servers.querylog import QueryLog
from repro.simcore.rng import RandomStreams
from repro.simcore.simulator import Simulator

PROBE_ID = 28477


@dataclass
class Table7Row:
    """One probing interval of Table 7."""

    interval: int
    client_queries: int
    client_answers: int
    client_r1_count: int
    auth_queries: int
    auth_answers: int
    at_count: int
    rn_count: int
    rn_at_pairs: int
    top2_queries: Tuple[int, int]
    during_attack: bool

    def as_tuple(self) -> tuple:
        return (
            self.interval,
            self.client_queries,
            self.client_answers,
            self.client_r1_count,
            self.auth_queries,
            self.auth_answers,
            self.at_count,
            self.rn_count,
            self.rn_at_pairs,
            self.top2_queries,
        )


@dataclass
class ProbeCaseResult:
    """Table 7 rows plus the Figure 17 topology."""

    rows: List[Table7Row]
    r1_addresses: List[str]
    rn_addresses: List[str]
    at_addresses: List[str]

    def amplification_summary(self) -> Dict[str, float]:
        """Mean offered authoritative queries per client query,
        normal vs attack intervals."""
        def mean_ratio(rows: List[Table7Row]) -> float:
            ratios = [
                row.auth_queries / row.client_queries
                for row in rows
                if row.client_queries
            ]
            return sum(ratios) / len(ratios) if ratios else 0.0

        normal = [row for row in self.rows if not row.during_attack]
        attack = [row for row in self.rows if row.during_attack]
        return {
            "normal_queries_per_client_query": mean_ratio(normal),
            "attack_queries_per_client_query": mean_ratio(attack),
        }


def run_probe_case(
    seed: int = 11,
    rounds: int = 17,
    round_seconds: float = 600.0,
    attack_rounds: Tuple[int, int] = (6, 12),
    loss_fraction: float = 0.90,
    ttl: int = 60,
) -> ProbeCaseResult:
    """Run the single-probe topology through an Experiment-I attack."""
    sim = Simulator()
    streams = RandomStreams(seed)
    attacks = AttackSchedule()
    network = Network(
        sim, streams, latency=PerHostLatency(jitter=0.2), attacks=attacks
    )
    rng = streams.stream("probe-case")

    specs = [
        ZoneSpec(".", {"a.root-servers.test.": "193.0.0.1"}),
        ZoneSpec("nl.", {"ns1.dns.nl.": "193.0.1.1"}),
        ZoneSpec(
            "cachetest.nl.",
            {
                "ns1.cachetest.nl.": "192.0.2.1",
                "ns2.cachetest.nl.": "192.0.2.2",
            },
            ns_ttl=ttl,
            a_ttl=ttl,
            negative_ttl=60,
        ),
    ]
    zones = build_hierarchy(specs)
    test_zone = zones[Name.from_text("cachetest.nl.")]
    attach_probe_synthesizer(test_zone, PROBE_ANSWER_PREFIX, ttl)
    AuthoritativeServer(sim, network, "193.0.0.1", [zones[Name(())]], name="root")
    AuthoritativeServer(
        sim, network, "193.0.1.1", [zones[Name.from_text("nl.")]], name="nl"
    )
    at_addresses = ["192.0.2.1", "192.0.2.2"]
    delivered_log = QueryLog()
    for address in at_addresses:
        AuthoritativeServer(
            sim,
            network,
            address,
            [test_zone],
            name=f"at-{address}",
            query_log=delivered_log,
        )

    offered_log = QueryLog()

    def make_tap(server: str):
        def tap(packet) -> None:
            message = packet.message
            if message.is_response or message.question is None:
                return
            offered_log.record(
                sim.now, packet.src, message.question.qname,
                message.question.qtype, server,
            )

        return tap

    for address in at_addresses:
        network.register_tap(address, make_tap(address))

    attack_start = attack_rounds[0] * round_seconds
    attack_end = attack_rounds[1] * round_seconds
    attacks.add(
        AttackWindow(at_addresses, attack_start, attack_end, loss_fraction)
    )

    # Eight last-layer recursives with mixed software personalities.
    rn_addresses: List[str] = []
    for index in range(8):
        address = f"100.64.1.{index + 1}"
        config = ResolverConfig()
        if index % 2 == 0:
            config.retry = unbound_profile()
            config.chase_ns_aaaa = True
            config.requery_delegation = True
        else:
            config.retry = bind_profile()
        RecursiveResolver(
            sim,
            network,
            address,
            ["193.0.0.1"],
            config=config,
            name=f"rn{index + 1}",
            rng=random.Random(rng.getrandbits(64)),
        )
        rn_addresses.append(address)

    # Three first-hop forwarders, each fanning out over all eight Rn.
    r1_addresses: List[str] = []
    for index in range(3):
        address = f"100.64.2.{index + 1}"
        shuffled = list(rn_addresses)
        rng.shuffle(shuffled)
        ForwardingResolver(
            sim,
            network,
            address,
            shuffled,
            config=ForwarderConfig(retry=forwarder_profile()),
            name=f"r1{chr(ord('a') + index)}",
        )
        r1_addresses.append(address)

    results: List[StubAnswer] = []
    stub = StubResolver(
        sim, network, "10.0.0.1", PROBE_ID, r1_addresses, results=results
    )
    qname = Name.from_text(f"{PROBE_ID}.cachetest.nl.")

    duration = rounds * round_seconds
    for step in range(1, int(duration // 600) + 1):
        sim.at(step * 600.0, test_zone.set_serial, 1 + step)
    for round_index in range(rounds):
        sim.at(
            round_index * round_seconds + rng.random() * 60.0,
            stub.query_round,
            qname,
            RRType.AAAA,
            round_index,
        )
    sim.run(until=duration + 30.0)

    rows: List[Table7Row] = []
    for round_index in range(rounds):
        window = (round_index * round_seconds, (round_index + 1) * round_seconds)
        round_answers = [
            answer for answer in results if answer.round_index == round_index
        ]
        answering_r1 = {
            answer.resolver
            for answer in round_answers
            if answer.status == StubAnswer.OK
        }
        offered = [
            entry
            for entry in offered_log.entries
            if window[0] <= entry.time < window[1] and entry.qname == qname
        ]
        delivered = [
            entry
            for entry in delivered_log.entries
            if window[0] <= entry.time < window[1] and entry.qname == qname
        ]
        rn_seen = {entry.src for entry in offered}
        at_seen = {entry.server for entry in offered}
        pairs: Set[Tuple[str, str]] = {
            (entry.src, entry.server) for entry in offered
        }
        per_rn: Dict[str, int] = {}
        for entry in offered:
            per_rn[entry.src] = per_rn.get(entry.src, 0) + 1
        top_counts = sorted(per_rn.values(), reverse=True)
        top2 = (
            top_counts[0] if top_counts else 0,
            top_counts[1] if len(top_counts) > 1 else 0,
        )
        rows.append(
            Table7Row(
                interval=round_index + 1,
                client_queries=len(round_answers),
                client_answers=sum(
                    1 for answer in round_answers if answer.status == StubAnswer.OK
                ),
                client_r1_count=len(answering_r1),
                auth_queries=len(offered),
                auth_answers=len(delivered),
                at_count=len(at_seen),
                rn_count=len(rn_seen),
                rn_at_pairs=len(pairs),
                top2_queries=top2,
                during_attack=attack_rounds[0] <= round_index < attack_rounds[1],
            )
        )
    return ProbeCaseResult(rows, r1_addresses, rn_addresses, at_addresses)
