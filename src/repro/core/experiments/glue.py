"""Appendix A: which TTL wins — the parent's referral or the child's answer?

Two reproductions:

* **Table 5** — a population experiment where the parent publishes the
  delegation with TTL 3600 while the child publishes the same records
  with TTL 60. Each VP queries the NS RRset (and an in-zone A record)
  through its recursives; the distribution of returned TTLs shows which
  side recursives honor (RFC 2181 §5.4.1 says the child; ~95% comply).

* **Table 6 / §A.3** — a single-resolver cache dump: an amazon.com-style
  zone whose parent-side TTL is 172800 s and whose child-side NS TTL is
  3600 s. After one NS query against a cold cache, the cache holds the
  child's 3600 s value for both BIND-like and Unbound-like resolvers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.clients.population import PopulationConfig
from repro.core.testbed import Testbed, TestbedConfig
from repro.simcore.events import DEFAULT_QUEUE_BACKEND
from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType
from repro.netem.link import PerHostLatency
from repro.netem.transport import Network
from repro.resolvers.recursive import Outcome, RecursiveResolver, ResolverConfig
from repro.resolvers.retry import bind_profile, unbound_profile
from repro.servers.authoritative import AuthoritativeServer
from repro.servers.hierarchy import ZoneSpec, build_hierarchy
from repro.simcore.rng import RandomStreams
from repro.simcore.simulator import Simulator


@dataclass
class TtlBuckets:
    """Table 5's row buckets over returned TTLs."""

    total: int = 0
    above_parent: int = 0  # TTL > parent TTL: "unclear"
    parent_exact: int = 0  # TTL == parent TTL
    between: int = 0  # child < TTL < parent: parent decremented / altered
    child_exact: int = 0  # TTL == child TTL
    below_child: int = 0  # TTL < child TTL: child decremented

    def add(self, ttl: int, parent_ttl: int, child_ttl: int) -> None:
        self.total += 1
        if ttl > parent_ttl:
            self.above_parent += 1
        elif ttl == parent_ttl:
            self.parent_exact += 1
        elif ttl > child_ttl:
            self.between += 1
        elif ttl == child_ttl:
            self.child_exact += 1
        else:
            self.below_child += 1

    @property
    def child_fraction(self) -> float:
        """Share of answers carrying the child's (authoritative) TTL."""
        if self.total == 0:
            return 0.0
        return (self.child_exact + self.below_child) / self.total

    def as_rows(self) -> List[Tuple[str, int]]:
        return [
            ("Total Answers", self.total),
            ("TTL>parent (unclear)", self.above_parent),
            ("TTL=parent", self.parent_exact),
            ("child<TTL<parent", self.between),
            ("TTL=child", self.child_exact),
            ("TTL<child", self.below_child),
        ]


@dataclass
class GlueResult:
    """Table 5 reproduction output."""

    parent_ttl: int
    child_ttl: int
    ns_buckets: TtlBuckets
    a_buckets: TtlBuckets


def run_glue_experiment(
    probe_count: int = 800,
    seed: int = 42,
    parent_ttl: int = 3600,
    child_ttl: int = 60,
    rounds: int = 3,
    probe_interval: float = 600.0,
    queue_backend: str = DEFAULT_QUEUE_BACKEND,
) -> GlueResult:
    """Table 5: population-wide NS/A TTL observations.

    The measurement zone publishes NS and in-zone A records with
    ``child_ttl`` while its parent publishes the delegation with
    ``parent_ttl``; every VP asks for both records each round.
    """
    population = PopulationConfig(probe_count=probe_count)
    testbed = Testbed(
        TestbedConfig(
            seed=seed,
            zone_ttl=child_ttl,
            delegation_ttl=parent_ttl,
            population=population,
            queue_backend=queue_backend,
        )
    )
    duration = rounds * probe_interval
    testbed.schedule_rotations(duration)
    ns_name = testbed.origin
    a_name = testbed.test_ns_names[0]
    rng = testbed.streams.stream("glue-probing")
    for round_index in range(rounds):
        start = round_index * probe_interval
        for probe in testbed.population.probes:
            offset = rng.random() * 300.0
            testbed.sim.at(
                start + offset,
                probe.stub.query_round,
                ns_name,
                RRType.NS,
                round_index,
            )
            testbed.sim.at(
                start + offset + 1.0,
                probe.stub.query_round,
                a_name,
                RRType.A,
                round_index,
            )
    testbed.run(duration)

    ns_buckets = TtlBuckets()
    a_buckets = TtlBuckets()
    for answer in testbed.population.results:
        if not answer.is_success or answer.returned_ttl is None:
            continue
        if answer.record_count == 0:
            continue
        # NS answers have multiple records; A answers a single one.
        if answer.serial is not None:
            continue  # instrumented AAAA; not part of this experiment
        buckets = ns_buckets if answer.record_count > 1 else a_buckets
        buckets.add(answer.returned_ttl, parent_ttl, child_ttl)
    return GlueResult(parent_ttl, child_ttl, ns_buckets, a_buckets)


# ---------------------------------------------------------------------------
# Table 6 / §A.3: single-resolver cache dump
# ---------------------------------------------------------------------------
@dataclass
class CacheDumpResult:
    """What one resolver cached after ``dig ns amazon.com``-style query."""

    software: str
    answered: bool
    ns_cached_ttl: Optional[int]
    parent_ttl: int
    child_ttl: int
    dump: List[Tuple[str, str, int, bool]] = field(default_factory=list)

    @property
    def stored_child_value(self) -> bool:
        """True when the cache holds the child's TTL (RFC 2181 behavior):
        at most the child TTL (decremented a little while cached), and
        far below the parent's."""
        return (
            self.ns_cached_ttl is not None
            and self.ns_cached_ttl <= self.child_ttl
            and self.ns_cached_ttl > self.child_ttl - 120
        )


def run_cache_dump_study(
    software: str = "bind",
    parent_ttl: int = 172800,
    child_ttl: int = 3600,
    seed: int = 7,
) -> CacheDumpResult:
    """§A.3: cold-cache NS query, then inspect the resolver's cache.

    Models the paper's amazon.com observation: the parent (.com) carries
    the NS set at 172800 s, the child answers authoritatively at 3600 s;
    both BIND and Unbound store the child's value.
    """
    sim = Simulator()
    streams = RandomStreams(seed)
    network = Network(sim, streams, latency=PerHostLatency(jitter=0.1))
    specs = [
        ZoneSpec(".", {"a.root-servers.test.": "193.0.0.1"}),
        ZoneSpec("com.", {"a.gtld-servers.test.": "193.0.1.1"}),
        ZoneSpec(
            "amazon.com.",
            {
                "ns1.amazon.com.": "192.0.2.1",
                "ns2.amazon.com.": "192.0.2.2",
            },
            ns_ttl=child_ttl,
            a_ttl=86400,
            delegation_ttl=parent_ttl,
        ),
    ]
    zones = build_hierarchy(specs)
    AuthoritativeServer(sim, network, "193.0.0.1", [zones[Name(())]], name="root")
    AuthoritativeServer(
        sim, network, "193.0.1.1", [zones[Name.from_text("com.")]], name="com"
    )
    amazon = zones[Name.from_text("amazon.com.")]
    AuthoritativeServer(sim, network, "192.0.2.1", [amazon], name="ns1")
    AuthoritativeServer(sim, network, "192.0.2.2", [amazon], name="ns2")

    config = ResolverConfig()
    if software == "bind":
        config.retry = bind_profile()
    elif software == "unbound":
        config.retry = unbound_profile()
        config.chase_ns_aaaa = True
        config.requery_delegation = True
        config.cache.max_ttl = 86400
    else:
        raise ValueError(f"unknown software {software!r}")
    resolver = RecursiveResolver(
        sim, network, "100.64.0.1", ["193.0.0.1"], config=config, name=software
    )

    outcomes: List[Outcome] = []
    sim.call_later(
        0.0,
        resolver.resolve,
        Name.from_text("amazon.com."),
        RRType.NS,
        outcomes.append,
    )
    sim.run(until=30.0)

    entry = resolver.cache.peek(Name.from_text("amazon.com."), RRType.NS)
    ns_ttl = entry.remaining_ttl(sim.now) if entry is not None else None
    dump = [
        (str(name), str(rtype), ttl, authoritative)
        for name, rtype, ttl, authoritative in resolver.cache.dump(sim.now)
    ]
    return CacheDumpResult(
        software=software,
        answered=bool(outcomes and outcomes[0].is_success),
        ns_cached_ttl=ns_ttl,
        parent_ttl=parent_ttl,
        child_ttl=child_ttl,
        dump=dump,
    )
