"""Parameter sweeps: the resilience surface behind the paper's matrix.

The paper samples a handful of (loss rate, TTL) points — Experiments
D–I. This module generalizes that into a grid sweep producing the full
client-failure / amplification surface, which is how an operator would
actually consume the result ("how much TTL do I need to survive an
attack of intensity X?").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.clients.population import PopulationConfig
from repro.core.experiments.ddos import DDoSSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner import DiskCache, RunFailure


@dataclass
class SweepPoint:
    """One (loss, TTL) cell of the surface."""

    loss_fraction: float
    ttl: int
    failure_before: float
    failure_during: float
    amplification: float

    @property
    def failure_added(self) -> float:
        """Attack-attributable failure (during minus baseline)."""
        return max(0.0, self.failure_during - self.failure_before)


@dataclass
class SweepResult:
    """The full grid, indexable by (loss, ttl).

    Under ``keep_going`` a cell whose run exhausted its retries is absent
    from ``points`` and recorded in ``failures`` instead; derived
    matrices carry NaN in that cell so the rest of the surface is still
    usable.
    """

    points: List[SweepPoint]
    probe_count: int
    seed: int
    failures: List["RunFailure"] = field(default_factory=list)

    def point(self, loss_fraction: float, ttl: int) -> SweepPoint:
        for candidate in self.points:
            if candidate.loss_fraction == loss_fraction and candidate.ttl == ttl:
                return candidate
        raise KeyError(f"no sweep point for loss={loss_fraction}, ttl={ttl}")

    def losses(self) -> List[float]:
        return sorted({point.loss_fraction for point in self.points})

    def ttls(self) -> List[int]:
        return sorted({point.ttl for point in self.points})

    def failure_matrix(self) -> List[List[float]]:
        """Rows = TTLs (ascending), columns = losses (ascending).

        A cell lost to a failed run renders as NaN rather than taking
        the whole matrix down with a ``KeyError``.
        """
        matrix: List[List[float]] = []
        for ttl in self.ttls():
            row: List[float] = []
            for loss in self.losses():
                try:
                    row.append(self.point(loss, ttl).failure_during)
                except KeyError:
                    row.append(float("nan"))
            matrix.append(row)
        return matrix

    def minimum_ttl_for(
        self, loss_fraction: float, max_failure: float
    ) -> Optional[int]:
        """Smallest swept TTL keeping failures at/below ``max_failure``
        under ``loss_fraction`` — the operator's planning question.
        Cells lost to failed runs are treated as not satisfying."""
        for ttl in self.ttls():
            try:
                candidate = self.point(loss_fraction, ttl)
            except KeyError:
                continue
            if candidate.failure_during <= max_failure:
                return ttl
        return None


def run_sweep(
    losses: Sequence[float] = (0.5, 0.75, 0.9),
    ttls: Sequence[int] = (60, 300, 1800),
    probe_count: int = 200,
    seed: int = 42,
    attack_start_min: float = 60.0,
    attack_duration_min: float = 60.0,
    population: Optional[PopulationConfig] = None,
    jobs: Optional[int] = 1,
    cache: Optional["DiskCache"] = None,
    keep_going: bool = False,
) -> SweepResult:
    """Run the grid; one full DDoS experiment per cell.

    Cells are independent runs, so the grid fans out over ``jobs`` worker
    processes (``None``/0 = all cores; the default of 1 keeps library
    callers serial) and previously-computed cells are reused from
    ``cache``. Point order — and therefore every derived matrix — is the
    (ttl, loss) grid order regardless of parallelism.

    With ``keep_going`` a cell that exhausts the executor's retry ladder
    is dropped from the surface (NaN in the matrices) and recorded in
    :attr:`SweepResult.failures` instead of aborting the whole grid.
    """
    from repro.runner import RunFailure, ddos_request, run_many

    cells = [(ttl, loss) for ttl in ttls for loss in losses]
    requests = [
        ddos_request(
            DDoSSpec(
                key=f"sweep-{ttl}-{int(loss * 100)}",
                ttl=ttl,
                ddos_start_min=attack_start_min,
                ddos_duration_min=attack_duration_min,
                queries_before=int(attack_start_min // 10),
                total_duration_min=attack_start_min + attack_duration_min + 10,
                probe_interval_min=10,
                loss_fraction=loss,
                servers="both",
            ),
            probe_count=probe_count,
            seed=seed,
            population=population,
        )
        for ttl, loss in cells
    ]
    results = run_many(requests, jobs=jobs, cache=cache, keep_going=keep_going)
    points = [
        SweepPoint(
            loss_fraction=loss,
            ttl=ttl,
            failure_before=result.failure_fraction_before_attack(),
            failure_during=result.failure_fraction_during_attack(),
            amplification=result.amplification(),
        )
        for (ttl, loss), result in zip(cells, results)
        if not isinstance(result, RunFailure)
    ]
    failures = [result for result in results if isinstance(result, RunFailure)]
    return SweepResult(
        points=points, probe_count=probe_count, seed=seed, failures=failures
    )
