"""Anycast-site study: the §8 root-vs-Dyn mechanics, made runnable.

The paper's implications section explains the uneven outcomes of real
root DDoS events with IP anycast: an attack concentrates on some sites'
catchments while others stay clean, and a DNS service "tends to be as
resilient as the strongest individual authoritative" because recursives
keep hunting for a server that answers.

This study serves the measurement zone from one nameserver whose single
address is anycast across ``site_count`` sites, attacks a subset of the
sites, and splits the client population by catchment:

* clients whose catchment site is attacked,
* clients landing on healthy sites,

optionally withdrawing the attacked sites mid-attack (the operators'
route-withdrawal mitigation), which re-hashes catchments onto the
healthy sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.clients.population import PopulationConfig, build_population
from repro.core.metrics import failure_fraction, responses_by_round
from repro.dnscore.name import Name
from repro.netem.address import default_allocator
from repro.netem.attack import AttackSchedule, AttackWindow
from repro.netem.link import PerHostLatency, draw_authoritative_base
from repro.netem.transport import Network
from repro.resolvers.stub import StubAnswer
from repro.servers.authoritative import AuthoritativeServer
from repro.servers.hierarchy import (
    PROBE_ANSWER_PREFIX,
    ZoneSpec,
    attach_probe_synthesizer,
    build_hierarchy,
)
from repro.servers.querylog import QueryLog
from repro.simcore.rng import RandomStreams
from repro.simcore.simulator import Simulator


@dataclass
class AnycastSpec:
    """Parameters of one anycast attack scenario."""

    site_count: int = 6
    attacked_sites: int = 3
    loss_fraction: float = 0.90
    ttl: int = 1800
    attack_start_min: float = 60.0
    attack_duration_min: float = 60.0
    total_duration_min: float = 150.0
    probe_interval_min: float = 10.0
    # Withdraw the attacked sites this many minutes into the attack
    # (None = never; the paper's root events saw both behaviors).
    withdraw_after_min: Optional[float] = None

    @property
    def round_seconds(self) -> float:
        return self.probe_interval_min * 60.0

    @property
    def attack_window(self) -> Tuple[float, float]:
        start = self.attack_start_min * 60.0
        return start, start + self.attack_duration_min * 60.0


@dataclass
class AnycastResult:
    """Per-catchment client outcomes."""

    spec: AnycastSpec
    answers_attacked_catchment: List[StubAnswer]
    answers_healthy_catchment: List[StubAnswer]
    # VPs behind forwarders/pools whose exit catchment is not directly
    # observable from the client side; reported separately.
    answers_indirect: List[StubAnswer] = field(default_factory=list)
    site_addresses: List[str] = field(default_factory=list)
    attacked_addresses: List[str] = field(default_factory=list)

    def failure_during_attack(self, catchment: str) -> float:
        window = self.spec.attack_window
        answers = (
            self.answers_attacked_catchment
            if catchment == "attacked"
            else self.answers_healthy_catchment
        )
        return failure_fraction(answers, window)

    def outcomes_by_round(self, catchment: str) -> Dict[int, Dict[str, int]]:
        answers = (
            self.answers_attacked_catchment
            if catchment == "attacked"
            else self.answers_healthy_catchment
        )
        return responses_by_round(answers, self.spec.round_seconds)


def run_anycast_study(
    spec: Optional[AnycastSpec] = None,
    probe_count: int = 300,
    seed: int = 42,
) -> AnycastResult:
    """Run the anycast scenario end to end."""
    spec = spec or AnycastSpec()
    if not 0 < spec.attacked_sites < spec.site_count:
        raise ValueError("attacked_sites must leave at least one healthy site")

    sim = Simulator()
    streams = RandomStreams(seed)
    allocator = default_allocator()
    latency = PerHostLatency(jitter=0.2)
    attacks = AttackSchedule()
    network = Network(
        sim, streams, latency=latency, attacks=attacks, baseline_loss=0.004
    )
    rng = streams.stream("anycast-study")

    # Zone tree: the measurement zone's single NS address is anycast.
    anycast_address = allocator.allocate("anycast")
    root_address = allocator.allocate("authoritatives")
    tld_address = allocator.allocate("authoritatives")
    specs = [
        ZoneSpec(".", {"a.root-servers.test.": root_address}),
        ZoneSpec("nl.", {"ns1.dns.nl.": tld_address}),
        ZoneSpec(
            "cachetest.nl.",
            {"ns1.cachetest.nl.": anycast_address},
            ns_ttl=spec.ttl,
            a_ttl=spec.ttl,
            negative_ttl=60,
        ),
    ]
    zones = build_hierarchy(specs)
    origin = Name.from_text("cachetest.nl.")
    test_zone = zones[origin]
    attach_probe_synthesizer(test_zone, PROBE_ANSWER_PREFIX, spec.ttl)

    latency.set_base(root_address, draw_authoritative_base(rng))
    latency.set_base(tld_address, draw_authoritative_base(rng))
    AuthoritativeServer(sim, network, root_address, [zones[Name(())]], name="root")
    AuthoritativeServer(
        sim, network, tld_address, [zones[Name.from_text("nl.")]], name="tld"
    )

    query_log = QueryLog()
    site_addresses: List[str] = []
    for index in range(spec.site_count):
        site_address = allocator.allocate("authoritatives")
        latency.set_base(site_address, draw_authoritative_base(rng))
        AuthoritativeServer(
            sim,
            network,
            site_address,
            [test_zone],
            name=f"site-{index}",
            query_log=query_log,
        )
        site_addresses.append(site_address)
    network.register_anycast(anycast_address, site_addresses)

    attacked = site_addresses[: spec.attacked_sites]
    attack_start, attack_end = spec.attack_window
    attacks.add(
        AttackWindow(attacked, attack_start, attack_end, spec.loss_fraction)
    )

    population = build_population(
        sim,
        network,
        streams,
        root_hints=[root_address],
        config=PopulationConfig(probe_count=probe_count),
        allocator=allocator,
        latency=latency,
        zone_origin=origin,
    )

    # Capture the pre-attack catchment of every first-hop recursive now:
    # a later route withdrawal re-hashes the live mapping, but the
    # analysis splits clients by where they were homed when the attack
    # began.
    catchment_of: Dict[str, str] = {}
    for probe in population.probes:
        for r1_address in probe.stub.recursives:
            if r1_address not in catchment_of:
                catchment_of[r1_address] = network.anycast_catchment(
                    r1_address, anycast_address
                )

    duration = spec.total_duration_min * 60.0
    interval = spec.round_seconds
    for step in range(1, int(duration // 600) + 1):
        sim.at(step * 600.0, test_zone.set_serial, 1 + step)
    population.schedule_rounds(
        0.0,
        interval,
        int(spec.total_duration_min / spec.probe_interval_min),
        300.0,
        streams.stream("probing"),
    )
    if spec.withdraw_after_min is not None:
        healthy = site_addresses[spec.attacked_sites:]
        sim.at(
            attack_start + spec.withdraw_after_min * 60.0,
            network.update_anycast,
            anycast_address,
            healthy,
        )
    sim.run(until=duration + 20.0)

    # Split VPs by the catchment of the recursive querying the anycast
    # service. The catchment belongs to the *exit* recursive, so the
    # clean comparison uses VPs whose first-hop IS the exit (direct ISP
    # resolvers); VPs behind forwarders, clusters, and public pools go
    # to the "indirect" bucket.
    attacked_set = set(attacked)
    attacked_answers: List[StubAnswer] = []
    healthy_answers: List[StubAnswer] = []
    indirect_answers: List[StubAnswer] = []
    for answer in population.results:
        if population.registry.kind_of(answer.resolver) != "isp":
            indirect_answers.append(answer)
            continue
        catchment = catchment_of.get(answer.resolver)
        if catchment in attacked_set:
            attacked_answers.append(answer)
        else:
            healthy_answers.append(answer)
    return AnycastResult(
        spec=spec,
        answers_attacked_catchment=attacked_answers,
        answers_healthy_catchment=healthy_answers,
        answers_indirect=indirect_answers,
        site_addresses=site_addresses,
        attacked_addresses=attacked,
    )
