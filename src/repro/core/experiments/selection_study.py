"""Authoritative-selection study (Müller et al. [27], used by §8).

The paper's implications lean on how recursives choose among a zone's
nameservers: they prefer the lowest-latency authoritative but keep
querying all of them, which is why a DNS service's latency is dragged
toward its slowest server while its *resilience* matches its strongest
one. This study pins one fast and one slow authoritative, drives many
resolutions with expiring caches, and reports the query share per
server — normally and with the preferred server knocked out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType
from repro.netem.attack import AttackSchedule, AttackWindow
from repro.netem.link import PairwiseLatency
from repro.netem.transport import Network
from repro.resolvers.recursive import RecursiveResolver, ResolverConfig
from repro.resolvers.retry import bind_profile
from repro.servers.authoritative import AuthoritativeServer
from repro.servers.hierarchy import (
    PROBE_ANSWER_PREFIX,
    ZoneSpec,
    attach_probe_synthesizer,
    build_hierarchy,
)
from repro.servers.querylog import QueryLog
from repro.simcore.rng import RandomStreams
from repro.simcore.simulator import Simulator


@dataclass
class SelectionResult:
    """Query distribution across the fast and slow authoritatives."""

    fast_queries: int
    slow_queries: int
    fast_latency: float
    slow_latency: float
    resolutions: int
    successes: int

    @property
    def total_queries(self) -> int:
        return self.fast_queries + self.slow_queries

    @property
    def fast_share(self) -> float:
        if self.total_queries == 0:
            return 0.0
        return self.fast_queries / self.total_queries


def run_selection_study(
    fast_latency: float = 0.010,
    slow_latency: float = 0.100,
    resolutions: int = 200,
    kill_fast: bool = False,
    seed: int = 42,
) -> SelectionResult:
    """Resolve ``resolutions`` uncached names and count server choices.

    The zone's TTL is 1 second so every resolution re-selects a server;
    ``kill_fast`` makes the preferred server unresponsive to show
    failover (the resilience half of the paper's §8 argument).
    """
    sim = Simulator()
    streams = RandomStreams(seed)
    attacks = AttackSchedule()
    latency = PairwiseLatency(default=0.01)
    network = Network(sim, streams, latency=latency, attacks=attacks)

    fast, slow = "192.0.2.1", "192.0.2.2"
    resolver_address = "100.64.0.1"
    latency.set_pair(resolver_address, fast, fast_latency)
    latency.set_pair(resolver_address, slow, slow_latency)

    specs = [
        ZoneSpec(".", {"a.root-servers.test.": "193.0.0.1"}),
        ZoneSpec("nl.", {"ns1.dns.nl.": "193.0.1.1"}),
        ZoneSpec(
            "cachetest.nl.",
            {"ns1.cachetest.nl.": fast, "ns2.cachetest.nl.": slow},
            ns_ttl=86400,  # the delegation stays cached; answers do not
            a_ttl=86400,
            negative_ttl=60,
        ),
    ]
    zones = build_hierarchy(specs)
    test_zone = zones[Name.from_text("cachetest.nl.")]
    attach_probe_synthesizer(test_zone, PROBE_ANSWER_PREFIX, 1)
    AuthoritativeServer(sim, network, "193.0.0.1", [zones[Name(())]], name="root")
    AuthoritativeServer(
        sim, network, "193.0.1.1", [zones[Name.from_text("nl.")]], name="tld"
    )
    log = QueryLog()
    AuthoritativeServer(
        sim, network, fast, [test_zone], name="fast", query_log=log
    )
    AuthoritativeServer(
        sim, network, slow, [test_zone], name="slow", query_log=log
    )
    if kill_fast:
        attacks.add(AttackWindow([fast], 0.0, 1e9, 1.0))

    import random as _random

    resolver = RecursiveResolver(
        sim,
        network,
        resolver_address,
        ["193.0.0.1"],
        config=ResolverConfig(retry=bind_profile()),
        rng=_random.Random(seed),
    )
    outcomes: List = []
    for index in range(resolutions):
        qname = Name.from_text(f"{index + 1}.cachetest.nl.")
        sim.at(index * 2.0, resolver.resolve, qname, RRType.AAAA, outcomes.append)
    sim.run(until=resolutions * 2.0 + 30.0)

    fast_queries = sum(1 for entry in log.entries if entry.server == "fast")
    slow_queries = sum(1 for entry in log.entries if entry.server == "slow")
    return SelectionResult(
        fast_queries=fast_queries,
        slow_queries=slow_queries,
        fast_latency=fast_latency,
        slow_latency=slow_latency,
        resolutions=resolutions,
        successes=sum(1 for outcome in outcomes if outcome.is_success),
    )
