"""Layered-defense reliability grids: Table 4 with real attack traffic.

The paper's Table 4 experiments *impose* a loss rate at the
authoritatives. This family instead offers an adversarial query stream
(:mod:`repro.attackload`) against authoritatives with a finite service
capacity (:mod:`repro.defense`), so loss *emerges* from saturation — and
then measures how much of the legitimate VPs' reliability each defense
layer buys back as layers are added one at a time:

* ``capacity-only`` — no active defense; the bounded service queue is
  the only thing standing between the flood and the zone.
* ``+rrl`` — BIND-style response rate limiting on top of capacity.
* ``+filter`` — per-source attacker filtering on top of capacity.
* ``+rrl+filter`` — both layers together.

Columns sweep attack intensity as a multiple of per-server capacity
(offered-load ratio rho). At rho the steady-state emergent loss of the
undefended column tends to ``1 - 1/rho`` (§ the M/D/1/K note in
``repro.defense.capacity``), which is how the grid reconciles with the
paper's configured-loss rows: rho 2, 4, 10 are the emergent analogues of
the 50%, 75%, 90% experiments (D–I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.attackload import (
    MODE_DIRECT,
    MODES,
    SPOOF_NONE,
    AttackLoadSpec,
)
from repro.clients.population import PopulationConfig
from repro.core.experiments.ddos import DDoSSpec
from repro.defense import DefenseSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner import DiskCache, RunFailure

# The measurement zone always runs two test authoritatives ("both" in
# Table 4's terms); capacity is per server, so the flood must offer
# intensity x capacity x servers in total for each server to see rho =
# intensity.
TEST_SERVER_COUNT = 2

# Grid rows, in the order layers are added. Each entry maps the row key
# to the (rrl, filtering) switches; capacity is always on — it is the
# substrate that makes loss emergent rather than configured.
DEFENSE_LAYERS: Tuple[Tuple[str, bool, bool], ...] = (
    ("capacity-only", False, False),
    ("+rrl", True, False),
    ("+filter", False, True),
    ("+rrl+filter", True, True),
)


@dataclass
class DefenseCell:
    """One (defense layers, attack intensity) cell of the grid."""

    layers: str
    intensity: float
    failure_before: float
    failure_during: float
    defense_stats: Dict[str, int] = field(repr=False)
    attack_stats: Dict[str, int] = field(repr=False)

    @property
    def reliability(self) -> float:
        """Legit-VP answer rate during the attack (1 - failure)."""
        return 1.0 - self.failure_during

    def _class_fraction(self, suffix: str) -> float:
        """Served share of all defense decisions for one traffic class."""
        served = self.defense_stats.get(f"served_{suffix}", 0)
        decided = served + sum(
            self.defense_stats.get(f"{counter}_{suffix}", 0)
            for counter in ("filtered", "rate_limited", "dropped_capacity")
        )
        if decided == 0:
            return 1.0
        return served / decided

    @property
    def legit_served_fraction(self) -> float:
        """Fraction of legitimate queries the authoritatives served."""
        return self._class_fraction("legit")

    @property
    def attack_served_fraction(self) -> float:
        """Fraction of attack queries that got past every layer."""
        return self._class_fraction("attack")


@dataclass
class DefenseStudyResult:
    """The full layers x intensity grid, plus rendering helpers."""

    cells: List[DefenseCell]
    capacity: float
    mode: str
    probe_count: int
    seed: int
    failures: List["RunFailure"] = field(default_factory=list)

    def cell(self, layers: str, intensity: float) -> DefenseCell:
        for candidate in self.cells:
            if candidate.layers == layers and candidate.intensity == intensity:
                return candidate
        raise KeyError(f"no cell for layers={layers!r}, intensity={intensity}")

    def _cell_or_none(
        self, layers: str, intensity: float
    ) -> Optional[DefenseCell]:
        """Grid lookup for renderers: ``None`` where the run failed."""
        try:
            return self.cell(layers, intensity)
        except KeyError:
            return None

    def layer_rows(self) -> List[str]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.layers not in seen:
                seen.append(cell.layers)
        return seen

    def intensities(self) -> List[float]:
        return sorted({cell.intensity for cell in self.cells})

    def reliability_grid(self) -> List[List[float]]:
        """Rows = defense layers (in added order), columns = intensity.
        Cells lost to failed runs (``keep_going``) are NaN."""
        grid: List[List[float]] = []
        for layers in self.layer_rows():
            row: List[float] = []
            for intensity in self.intensities():
                cell = self._cell_or_none(layers, intensity)
                row.append(cell.reliability if cell else float("nan"))
            grid.append(row)
        return grid

    def marginal_benefit(self, layers: str, intensity: float) -> float:
        """Reliability gained over ``capacity-only`` at this intensity."""
        return (
            self.cell(layers, intensity).reliability
            - self.cell("capacity-only", intensity).reliability
        )

    def render(self) -> str:
        """Plain-text grid for the CLI."""
        intensities = self.intensities()
        lines = [
            (
                f"legit-VP reliability during attack ({self.mode}, "
                f"capacity {self.capacity:.0f} q/s per server; columns: "
                "offered load / capacity)"
            ),
            f"{'defenses':>14} "
            + "".join(f"{intensity:>8.0f}x" for intensity in intensities),
        ]
        for layers in self.layer_rows():
            row = "".join(
                f"{cell.reliability:>9.1%}" if cell else f"{'n/a':>9}"
                for cell in (
                    self._cell_or_none(layers, intensity)
                    for intensity in intensities
                )
            )
            lines.append(f"{layers:>14} {row}")
        lines.append("")
        lines.append("attack queries surviving every layer:")
        for layers in self.layer_rows():
            row = "".join(
                f"{cell.attack_served_fraction:>9.1%}" if cell else f"{'n/a':>9}"
                for cell in (
                    self._cell_or_none(layers, intensity)
                    for intensity in intensities
                )
            )
            lines.append(f"{layers:>14} {row}")
        return "\n".join(lines)

    def markdown(self) -> List[str]:
        """Markdown rows for the EXPERIMENTS report."""
        intensities = self.intensities()
        header = "| defenses | " + " | ".join(
            f"{intensity:.0f}x capacity" for intensity in intensities
        )
        lines = [
            header + " |",
            "|---" * (len(intensities) + 1) + "|",
        ]
        for layers in self.layer_rows():
            cells = " | ".join(
                (
                    f"{cell.reliability:.1%} "
                    f"(atk {cell.attack_served_fraction:.0%})"
                    if cell
                    else "n/a (run failed)"
                )
                for cell in (
                    self._cell_or_none(layers, intensity)
                    for intensity in intensities
                )
            )
            lines.append(f"| {layers} | {cells} |")
        return lines


def defense_spec_for(
    layers: str,
    capacity: float,
    queue_limit: int = 10,
    rrl_rate: Optional[float] = None,
) -> DefenseSpec:
    """The :class:`DefenseSpec` for one grid row key.

    The study's RRL floor defaults to ``capacity / 4``: rate limiting
    only helps if it caps a hot prefix *below* server capacity (a floor
    at or above capacity can never pull an overloaded server out of
    saturation). The small queue bounds waiting time at ``queue_limit /
    capacity`` seconds, keeping served-but-late responses inside the
    recursives' retry timeouts — loss shows up as loss, not as timeout
    inflation.
    """
    if rrl_rate is None:
        rrl_rate = capacity / 4.0
    for key, rrl, filtering in DEFENSE_LAYERS:
        if key == layers:
            return DefenseSpec(
                rrl=rrl,
                rrl_rate=rrl_rate,
                filtering=filtering,
                qps_capacity=capacity,
                queue_limit=queue_limit,
            )
    raise KeyError(f"unknown defense row {layers!r}")


def run_defense_study(
    intensities: Sequence[float] = (2.0, 4.0, 10.0),
    capacity: float = 20.0,
    mode: str = MODE_DIRECT,
    attackers: int = 8,
    probe_count: int = 120,
    seed: int = 42,
    layer_rows: Sequence[str] = tuple(key for key, _, _ in DEFENSE_LAYERS),
    population: Optional[PopulationConfig] = None,
    jobs: Optional[int] = 1,
    cache: Optional["DiskCache"] = None,
    keep_going: bool = False,
) -> DefenseStudyResult:
    """Run the grid; one emergent-loss DDoS experiment per cell.

    Every cell is a normal Table 4 timeline (warm-up, attack window,
    recovery) with ``loss_fraction`` 0 — no axiomatic drop — plus an
    :class:`AttackLoadSpec` flood sized to ``intensity x capacity x
    TEST_SERVER_COUNT`` total q/s and a :class:`DefenseSpec` from the
    row key. Cells fan out over ``jobs`` workers and reuse ``cache``
    like every other batch experiment.

    The short TTL (60 s) keeps recursives dependent on live
    authoritative service during the attack, so reliability tracks what
    the defenses let through rather than what caches hide (the paper's
    Experiment I regime).
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    from repro.runner import RunFailure, ddos_request, run_many

    attack_start_min, attack_duration_min = 30.0, 40.0
    total_min = attack_start_min + attack_duration_min + 10.0
    cells = [
        (layers, float(intensity))
        for layers in layer_rows
        for intensity in intensities
    ]
    requests = []
    for layers, intensity in cells:
        total_qps = intensity * capacity * TEST_SERVER_COUNT
        requests.append(
            ddos_request(
                DDoSSpec(
                    key=f"defense-{layers}-{intensity:g}x",
                    ttl=60,
                    ddos_start_min=attack_start_min,
                    ddos_duration_min=attack_duration_min,
                    queries_before=int(attack_start_min // 10),
                    total_duration_min=total_min,
                    probe_interval_min=10,
                    loss_fraction=0.0,
                    servers="both",
                ),
                probe_count=probe_count,
                seed=seed,
                population=population,
                attack_load=AttackLoadSpec(
                    mode=mode,
                    attackers=attackers,
                    qps=total_qps / attackers,
                    start=attack_start_min * 60.0,
                    duration=attack_duration_min * 60.0,
                    spoof=SPOOF_NONE,
                ),
                defense=defense_spec_for(layers, capacity),
            )
        )
    results = run_many(requests, jobs=jobs, cache=cache, keep_going=keep_going)
    study_cells = [
        DefenseCell(
            layers=layers,
            intensity=intensity,
            failure_before=result.failure_fraction_before_attack(),
            failure_during=result.failure_fraction_during_attack(),
            defense_stats=dict(result.testbed.defense_stats or {}),
            attack_stats=dict(result.testbed.attack_stats or {}),
        )
        for (layers, intensity), result in zip(cells, results)
        if not isinstance(result, RunFailure)
    ]
    return DefenseStudyResult(
        cells=study_cells,
        capacity=capacity,
        mode=mode,
        probe_count=probe_count,
        seed=seed,
        failures=[r for r in results if isinstance(r, RunFailure)],
    )
