"""The §3 caching baseline: five controlled TTL experiments.

Each experiment queries every VP's unique name once per probing round
against the instrumented zone, with no attack, and classifies every
answer. Reproduces Table 1 (dataset accounting), Table 2 (answer
classes), Table 3 (public-resolver attribution of misses), Figure 3
(warm-cache miss fractions per TTL), and Figure 13 (class mix over time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.clients.population import PopulationConfig
from repro.core.classification import (
    AnswerClass,
    ClassificationTable,
    ClassifiedAnswer,
    MissAttribution,
    classify_answers,
    classify_misses_by_resolver,
)
from repro.core.metrics import round_index_of
from repro.core.testbed import Testbed, TestbedConfig
from repro.simcore.events import DEFAULT_QUEUE_BACKEND
from repro.obs import ObsSpec
from repro.resolvers.stub import StubAnswer


@dataclass
class BaselineSpec:
    """One column of Table 1."""

    key: str
    ttl: int
    probe_interval: float  # seconds between rounds
    rounds: int

    @property
    def duration(self) -> float:
        return self.probe_interval * self.rounds


# The paper's five baseline experiments (Table 1): four at 20-minute
# probing over ~2 hours, the fifth at 10-minute probing for resolution.
BASELINE_EXPERIMENTS: Dict[str, BaselineSpec] = {
    "60": BaselineSpec("60", 60, 1200.0, 6),
    "1800": BaselineSpec("1800", 1800, 1200.0, 6),
    "3600": BaselineSpec("3600", 3600, 1200.0, 6),
    "86400": BaselineSpec("86400", 86400, 1200.0, 6),
    "3600-10m": BaselineSpec("3600-10m", 3600, 600.0, 12),
}


@dataclass
class DatasetCounts:
    """Table 1 row group for one experiment."""

    probes: int = 0
    probes_valid: int = 0
    probes_discarded: int = 0
    vps: int = 0
    queries: int = 0
    answers: int = 0
    answers_valid: int = 0
    answers_discarded: int = 0

    def as_rows(self) -> List[Tuple[str, int]]:
        return [
            ("Probes", self.probes),
            ("Probes (val.)", self.probes_valid),
            ("Probes (disc.)", self.probes_discarded),
            ("VPs", self.vps),
            ("Queries", self.queries),
            ("Answers", self.answers),
            ("Answers (val.)", self.answers_valid),
            ("Answers (disc.)", self.answers_discarded),
        ]


@dataclass
class BaselineResult:
    """Everything the §3 analyses need from one run."""

    spec: BaselineSpec
    dataset: DatasetCounts
    table2: ClassificationTable
    table3: MissAttribution
    classified: List[ClassifiedAnswer]
    answers: List[StubAnswer]
    # Observability payloads (empty/None unless the run enabled them).
    # BaselineResult has no live testbed reference, so telemetry is
    # carried directly and survives pickling through the runner cache.
    spans: List = field(default_factory=list, repr=False)
    metric_snapshots: List = field(default_factory=list, repr=False)
    timeline_points: List = field(default_factory=list, repr=False)
    profile: Optional[dict] = field(default=None, repr=False)

    @property
    def miss_rate(self) -> float:
        return self.table2.miss_rate

    def class_timeseries(self) -> Dict[int, Dict[str, int]]:
        """Figure 13: answer classes per probing round."""
        series: Dict[int, Dict[str, int]] = {}
        for item in self.classified:
            if item.answer_class == AnswerClass.WARMUP:
                continue
            bucket = series.setdefault(
                round_index_of(item.time, self.spec.probe_interval),
                {"AA": 0, "AC": 0, "CC": 0, "CA": 0},
            )
            bucket[item.answer_class.value] += 1
        return series


def dataset_counts(testbed: Testbed, answers: List[StubAnswer]) -> DatasetCounts:
    """Table 1 accounting from raw stub results."""
    counts = DatasetCounts()
    counts.probes = len(testbed.population.probes)
    counts.vps = testbed.population.vp_count
    counts.queries = len(answers)
    answered_probes = set()
    for answer in answers:
        if answer.status != StubAnswer.NO_ANSWER:
            counts.answers += 1
            answered_probes.add(answer.probe_id)
            if answer.is_success and answer.serial is not None:
                counts.answers_valid += 1
            else:
                counts.answers_discarded += 1
    counts.probes_valid = len(answered_probes)
    counts.probes_discarded = counts.probes - counts.probes_valid
    return counts


def run_baseline(
    spec: BaselineSpec,
    probe_count: int = 1500,
    seed: int = 42,
    population: Optional[PopulationConfig] = None,
    wire_format: bool = False,
    obs: Optional[ObsSpec] = None,
    queue_backend: str = DEFAULT_QUEUE_BACKEND,
) -> BaselineResult:
    """Run one baseline experiment end to end."""
    population_config = population or PopulationConfig(probe_count=probe_count)
    testbed = Testbed(
        TestbedConfig(
            seed=seed,
            zone_ttl=spec.ttl,
            population=population_config,
            wire_format=wire_format,
            obs=obs,
            queue_backend=queue_backend,
        )
    )
    duration = spec.duration
    testbed.schedule_rotations(duration)
    testbed.schedule_churn(duration)
    testbed.schedule_probing(0.0, spec.probe_interval, spec.rounds)
    testbed.schedule_metric_snapshots(spec.probe_interval, spec.rounds)
    testbed.run(duration)
    testbed.take_metric_snapshot(spec.rounds)

    answers = testbed.population.results
    counts = dataset_counts(testbed, answers)
    table2, classified = classify_answers(answers, spec.ttl, testbed.rotation)
    table3 = classify_misses_by_resolver(
        classified,
        testbed.population.registry,
        query_log=testbed.query_log,
        zone_origin=testbed.origin,
    )
    return BaselineResult(
        spec=spec,
        dataset=counts,
        table2=table2,
        table3=table3,
        classified=classified,
        answers=answers,
        spans=list(testbed.spans),
        metric_snapshots=list(testbed.metric_snapshots),
        timeline_points=list(testbed.timeline_points),
        profile=testbed.profile_summary(),
    )
