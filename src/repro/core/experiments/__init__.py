"""Experiment runners: one per paper experiment.

* :mod:`~repro.core.experiments.baseline` — the §3 caching baseline
  (Tables 1–3, Figures 3 and 13).
* :mod:`~repro.core.experiments.ddos` — the §5/§6 DDoS emulations A–I
  (Table 4, Figures 6–12, 14, 15).
* :mod:`~repro.core.experiments.glue` — Appendix A referral-vs-answer
  TTL precedence (Tables 5–6).
* :mod:`~repro.core.experiments.software` — Appendix E BIND/Unbound
  retry counts (Figure 16).
* :mod:`~repro.core.experiments.probe_case` — Appendix F single-probe
  drill-down (Table 7, Figure 17).
"""

from repro.core.experiments.baseline import (
    BASELINE_EXPERIMENTS,
    BaselineResult,
    BaselineSpec,
    run_baseline,
)
from repro.core.experiments.ddos import (
    DDOS_EXPERIMENTS,
    DDoSResult,
    DDoSSpec,
    run_ddos,
)
from repro.core.experiments.defense_study import (
    DEFENSE_LAYERS,
    DefenseCell,
    DefenseStudyResult,
    run_defense_study,
)
from repro.core.experiments.glue import (
    CacheDumpResult,
    GlueResult,
    TtlBuckets,
    run_cache_dump_study,
    run_glue_experiment,
)
from repro.core.experiments.probe_case import (
    ProbeCaseResult,
    Table7Row,
    run_probe_case,
)
from repro.core.experiments.anycast_study import (
    AnycastResult,
    AnycastSpec,
    run_anycast_study,
)
from repro.core.experiments.selection_study import (
    SelectionResult,
    run_selection_study,
)
from repro.core.experiments.software import SoftwareResult, run_software_study
from repro.core.experiments.sweep import SweepPoint, SweepResult, run_sweep

__all__ = [
    "AnycastResult",
    "AnycastSpec",
    "SelectionResult",
    "SweepPoint",
    "SweepResult",
    "run_anycast_study",
    "run_selection_study",
    "run_sweep",
    "BASELINE_EXPERIMENTS",
    "BaselineResult",
    "BaselineSpec",
    "CacheDumpResult",
    "DDOS_EXPERIMENTS",
    "DDoSResult",
    "DDoSSpec",
    "DEFENSE_LAYERS",
    "DefenseCell",
    "DefenseStudyResult",
    "run_defense_study",
    "GlueResult",
    "ProbeCaseResult",
    "SoftwareResult",
    "Table7Row",
    "TtlBuckets",
    "run_baseline",
    "run_cache_dump_study",
    "run_ddos",
    "run_glue_experiment",
    "run_probe_case",
    "run_software_study",
]
