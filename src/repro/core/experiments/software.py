"""Appendix E: how hard do BIND and Unbound retry when servers are dead?

A minimal deployment — one recursive resolver, the root, ``.net``, and
two ``cachetest.net`` authoritatives — resolves one AAAA record with a
cold cache, normally and with both target authoritatives unreachable.
Queries are counted per zone at the servers, reproducing Figure 16's
histogram: BIND ~3 queries normally vs ~12 under failure (it re-asks the
parents); Unbound ~5–6 normally vs tens under failure (it chases the
nonexistent AAAA records of the nameservers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType
from repro.netem.attack import AttackSchedule, AttackWindow
from repro.netem.link import PerHostLatency
from repro.netem.transport import Network
from repro.resolvers.recursive import Outcome, RecursiveResolver, ResolverConfig
from repro.resolvers.retry import bind_profile, unbound_profile
from repro.servers.authoritative import AuthoritativeServer
from repro.servers.hierarchy import ZoneSpec, build_hierarchy
from repro.servers.querylog import QueryLog
from repro.simcore.rng import RandomStreams
from repro.simcore.simulator import Simulator


@dataclass
class SoftwareResult:
    """Query counts per zone for one (software, condition) cell."""

    software: str
    under_attack: bool
    queries_root: int
    queries_tld: int
    queries_target: int
    resolved: bool

    @property
    def total(self) -> int:
        return self.queries_root + self.queries_tld + self.queries_target

    def as_row(self) -> Dict[str, int]:
        return {
            "root": self.queries_root,
            "net": self.queries_tld,
            "cachetest.net": self.queries_target,
            "total": self.total,
        }


def run_software_study(
    software: str = "bind",
    under_attack: bool = False,
    seed: int = 7,
) -> SoftwareResult:
    """Resolve ``sub.cachetest.net`` AAAA once, cold cache, and count
    the queries each zone's servers were offered."""
    sim = Simulator()
    streams = RandomStreams(seed)
    attacks = AttackSchedule()
    network = Network(
        sim, streams, latency=PerHostLatency(jitter=0.1), attacks=attacks
    )
    specs = [
        ZoneSpec(
            ".",
            {
                "a.root-servers.test.": "193.0.0.1",
                "b.root-servers.test.": "193.0.0.2",
            },
        ),
        ZoneSpec(
            "net.",
            {
                "a.gtld-servers.test.": "193.0.1.1",
                "b.gtld-servers.test.": "193.0.1.2",
            },
        ),
        ZoneSpec(
            "cachetest.net.",
            {
                "ns1.cachetest.net.": "192.0.2.1",
                "ns2.cachetest.net.": "192.0.2.2",
            },
            ns_ttl=3600,
            a_ttl=3600,
            negative_ttl=60,
        ),
    ]
    zones = build_hierarchy(specs)
    root_log = QueryLog()
    tld_log = QueryLog()
    target_log = QueryLog()
    root_zone = zones[Name(())]
    tld_zone = zones[Name.from_text("net.")]
    target_zone = zones[Name.from_text("cachetest.net.")]
    from repro.dnscore.records import AAAA

    target_zone.add(
        Name.from_text("sub.cachetest.net."),
        3600,
        AAAA("2001:db8::cafe"),
    )
    for address in ("193.0.0.1", "193.0.0.2"):
        AuthoritativeServer(
            sim, network, address, [root_zone], name=f"root-{address}", query_log=root_log
        )
    for address in ("193.0.1.1", "193.0.1.2"):
        AuthoritativeServer(
            sim, network, address, [tld_zone], name=f"net-{address}", query_log=tld_log
        )
    target_addresses = ["192.0.2.1", "192.0.2.2"]
    for address in target_addresses:
        AuthoritativeServer(
            sim, network, address, [target_zone], name=f"at-{address}", query_log=target_log
        )
    # The offered load at dead servers is what Figure 16 counts; tap in
    # front of the attack drop.
    offered_target = QueryLog()

    def tap(packet) -> None:
        message = packet.message
        if message.is_response or message.question is None:
            return
        offered_target.record(
            sim.now, packet.src, message.question.qname, message.question.qtype, "at"
        )

    for address in target_addresses:
        network.register_tap(address, tap)

    if under_attack:
        attacks.add(AttackWindow(target_addresses, 0.0, 3600.0, 1.0))

    config = ResolverConfig()
    if software == "bind":
        config.retry = bind_profile()
        config.chase_ns_aaaa = False
        config.requery_delegation = False
    elif software == "unbound":
        config.retry = unbound_profile()
        config.chase_ns_aaaa = True
        config.requery_delegation = True
    else:
        raise ValueError(f"unknown software {software!r}")
    resolver = RecursiveResolver(
        sim,
        network,
        "100.64.0.1",
        ["193.0.0.1", "193.0.0.2"],
        config=config,
        name=software,
    )

    outcomes: List[Outcome] = []
    sim.call_later(
        0.0,
        resolver.resolve,
        Name.from_text("sub.cachetest.net."),
        RRType.AAAA,
        outcomes.append,
    )
    sim.run(until=60.0)

    return SoftwareResult(
        software=software,
        under_attack=under_attack,
        queries_root=len(root_log),
        queries_tld=len(tld_log),
        queries_target=len(offered_target),
        resolved=bool(outcomes and outcomes[0].is_success),
    )
