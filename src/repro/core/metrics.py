"""Client-experience and authoritative-side metric aggregations.

These functions turn raw :class:`~repro.resolvers.stub.StubAnswer` rows
and server query logs into exactly the series the paper plots: answers
per round by outcome (Figures 6, 8, 14), latency quantiles per round
(Figures 9, 15), per-qtype authoritative load (Figure 10), unique Rn
addresses per round (Figure 12), and per-probe Rn / query amplification
quantiles (Figure 11, Table 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType
from repro.resolvers.stub import StubAnswer
from repro.servers.querylog import QueryLog


def round_index_of(time: float, round_seconds: float) -> int:
    return int(time // round_seconds)


def quantile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation quantile of pre-sorted values."""
    if not sorted_values:
        raise ValueError("quantile of empty sequence")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return sorted_values[lower]
    weight = position - lower
    value = sorted_values[lower] * (1 - weight) + sorted_values[upper] * weight
    # Clamp: float interpolation can overshoot by an ULP.
    return min(max(value, sorted_values[0]), sorted_values[-1])


# ---------------------------------------------------------------------------
# Client-side series
# ---------------------------------------------------------------------------
def responses_by_round(
    answers: Iterable[StubAnswer],
    round_seconds: float = 600.0,
) -> Dict[int, Dict[str, int]]:
    """Answers per probing round by outcome: OK / SERVFAIL / no answer.

    This is the data behind Figures 6, 8, and 14 (stacked outcome
    counts over 10-minute rounds). NXDOMAIN/NODATA count as errors the
    way the paper discards them ("answers (disc.)").
    """
    series: Dict[int, Dict[str, int]] = {}
    for answer in answers:
        bucket = series.setdefault(
            round_index_of(answer.sent_at, round_seconds),
            {"ok": 0, "servfail": 0, "no_answer": 0, "error": 0},
        )
        if answer.status == StubAnswer.OK:
            bucket["ok"] += 1
        elif answer.status == StubAnswer.SERVFAIL:
            bucket["servfail"] += 1
        elif answer.status == StubAnswer.NO_ANSWER:
            bucket["no_answer"] += 1
        else:
            bucket["error"] += 1
    return series


def failure_fraction(
    answers: Iterable[StubAnswer],
    window: Optional[Tuple[float, float]] = None,
) -> float:
    """Fraction of queries not answered OK, optionally within a window."""
    total = 0
    failed = 0
    for answer in answers:
        if window is not None and not window[0] <= answer.sent_at < window[1]:
            continue
        total += 1
        if answer.status != StubAnswer.OK:
            failed += 1
    return failed / total if total else 0.0


@dataclass
class LatencyQuantiles:
    """One round's latency summary (milliseconds), Figure 9 style."""

    round_index: int
    count: int
    median_ms: float
    mean_ms: float
    p75_ms: float
    p90_ms: float

    def as_row(self) -> Tuple[int, int, float, float, float, float]:
        return (
            self.round_index,
            self.count,
            self.median_ms,
            self.mean_ms,
            self.p75_ms,
            self.p90_ms,
        )


def latency_by_round(
    answers: Iterable[StubAnswer],
    round_seconds: float = 600.0,
) -> List[LatencyQuantiles]:
    """Per-round latency quantiles over successfully answered queries."""
    latencies: Dict[int, List[float]] = {}
    for answer in answers:
        if answer.latency is None or answer.status != StubAnswer.OK:
            continue
        latencies.setdefault(
            round_index_of(answer.sent_at, round_seconds), []
        ).append(answer.latency * 1000.0)
    result: List[LatencyQuantiles] = []
    for round_index in sorted(latencies):
        values = sorted(latencies[round_index])
        result.append(
            LatencyQuantiles(
                round_index=round_index,
                count=len(values),
                median_ms=quantile(values, 0.5),
                mean_ms=sum(values) / len(values),
                p75_ms=quantile(values, 0.75),
                p90_ms=quantile(values, 0.90),
            )
        )
    return result


# ---------------------------------------------------------------------------
# Authoritative-side series
# ---------------------------------------------------------------------------
def authoritative_load_by_round(
    query_log: QueryLog,
    target_zone: Name,
    ns_names: Sequence[Name],
    round_seconds: float = 600.0,
) -> Dict[int, Dict[str, int]]:
    """Queries at the authoritatives per round, by Figure 10's kinds."""
    from repro.servers.querylog import classify_query_kind

    ns_set = list(ns_names)

    def classify(entry) -> str:
        return classify_query_kind(entry, target_zone, ns_set)

    return query_log.count_by_round(round_seconds, classify)


def amplification_factor(
    load_by_round: Dict[int, Dict[str, int]],
    normal_rounds: Sequence[int],
    attack_rounds: Sequence[int],
) -> float:
    """Mean attack-round load over mean normal-round load (§6.1's 8×)."""

    def mean_total(rounds: Sequence[int]) -> float:
        totals = [
            sum(load_by_round.get(index, {}).values()) for index in rounds
        ]
        return sum(totals) / len(totals) if totals else 0.0

    normal = mean_total(normal_rounds)
    attack = mean_total(attack_rounds)
    if normal == 0:
        return float("inf") if attack else 0.0
    return attack / normal


@dataclass
class PerProbeAmplification:
    """Figure 11: per-probe Rn fan-out and query amplification."""

    round_index: int
    rn_median: float
    rn_p90: float
    rn_max: float
    queries_median: float
    queries_p90: float
    queries_max: float


def per_probe_amplification(
    query_log: QueryLog,
    zone_origin: Name,
    round_seconds: float = 600.0,
) -> List[PerProbeAmplification]:
    """Distribution (over probes) of distinct Rn and AAAA-for-PID counts.

    Only AAAA queries for single-label probe names under the zone are
    counted, exactly like the paper's Figure 11 (NS-related queries
    cannot be attributed to a probe).
    """
    per_round: Dict[int, Dict[str, Dict[str, int]]] = {}
    rn_sets: Dict[Tuple[int, str], set] = {}
    for entry in query_log.entries:
        if entry.qtype != RRType.AAAA:
            continue
        if not entry.qname.is_subdomain_of(zone_origin):
            continue
        labels = entry.qname.relativize(zone_origin)
        if len(labels) != 1 or not labels[0].isdigit():
            continue
        probe_key = labels[0]
        round_index = round_index_of(entry.time, round_seconds)
        counts = per_round.setdefault(round_index, {}).setdefault(
            probe_key, {"queries": 0}
        )
        counts["queries"] += 1
        rn_sets.setdefault((round_index, probe_key), set()).add(entry.src)

    result: List[PerProbeAmplification] = []
    for round_index in sorted(per_round):
        probes = per_round[round_index]
        rn_counts = sorted(
            float(len(rn_sets[(round_index, probe_key)])) for probe_key in probes
        )
        query_counts = sorted(
            float(counts["queries"]) for counts in probes.values()
        )
        result.append(
            PerProbeAmplification(
                round_index=round_index,
                rn_median=quantile(rn_counts, 0.5),
                rn_p90=quantile(rn_counts, 0.9),
                rn_max=rn_counts[-1],
                queries_median=quantile(query_counts, 0.5),
                queries_p90=quantile(query_counts, 0.9),
                queries_max=query_counts[-1],
            )
        )
    return result


def unique_rn_by_round(
    query_log: QueryLog, round_seconds: float = 600.0
) -> Dict[int, int]:
    """Figure 12: unique recursive addresses reaching the authoritatives."""
    return query_log.unique_sources_by_round(round_seconds)
