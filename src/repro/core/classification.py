"""Answer classification: the paper's §3.4 methodology, reimplemented.

Every successful answer carries (serial, probe id, TTL) encoded in its
AAAA rdata. Comparing the answer's serial with the serial current at
query time tells whether the answer came from the authoritative (fresh
serial) or from a cache (older serial); tracking each VP's previous
answer and its returned TTL tells whether a cache hit was *expected*.
Crossing the two yields four classes:

======  =========================  ==========================
class   answered by                expected from
======  =========================  ==========================
AA      authoritative              authoritative
CC      cache                      cache (a proper hit)
AC      authoritative              cache (a cache miss)
CA      cache                      authoritative (extended /
                                   stale cache)
======  =========================  ==========================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.clients.publicdns import ResolverRegistry
from repro.dnscore.name import Name
from repro.resolvers.stub import StubAnswer
from repro.servers.querylog import QueryLog


class RotationSchedule:
    """Knows which zone serial was current at any instant (§3.2: the
    serial increments with each 10-minute zone rotation)."""

    def __init__(self, initial_serial: int = 1, interval: float = 600.0) -> None:
        self.initial_serial = initial_serial
        self.interval = interval

    def serial_at(self, time: float) -> int:
        if time < 0:
            return self.initial_serial
        return self.initial_serial + int(time // self.interval)


class AnswerClass(enum.Enum):
    """The four §3.4 classes plus warm-up."""

    WARMUP = "AAi"
    AA = "AA"
    CC = "CC"
    AC = "AC"
    CA = "CA"


@dataclass
class ClassifiedAnswer:
    """One valid answer with its class and manipulation markers."""

    answer: StubAnswer
    answer_class: AnswerClass
    ttl_altered: bool
    serial_decreased: bool

    @property
    def time(self) -> float:
        return self.answer.sent_at


@dataclass
class ClassificationTable:
    """Aggregate counts in the shape of the paper's Table 2."""

    answers_valid: int = 0
    one_answer_vps: int = 0
    warmup: int = 0
    warmup_ttl_as_zone: int = 0
    warmup_ttl_altered: int = 0
    aa: int = 0
    cc: int = 0
    cc_decreasing: int = 0
    ac: int = 0
    ac_ttl_as_zone: int = 0
    ac_ttl_altered: int = 0
    ca: int = 0
    ca_decreasing: int = 0

    @property
    def subsequent(self) -> int:
        """Answers after the warm-up (the Figure 3 denominator)."""
        return self.aa + self.cc + self.ac + self.ca

    @property
    def miss_rate(self) -> float:
        """Cache misses among answers that should have been cached or
        fresh — the paper's headline ~30% (Figure 3)."""
        if self.subsequent == 0:
            return 0.0
        return self.ac / self.subsequent

    def as_rows(self) -> List[Tuple[str, int]]:
        return [
            ("Answers (valid)", self.answers_valid),
            ("1-answer VPs", self.one_answer_vps),
            ("Warm-up (AAi)", self.warmup),
            ("TTL as zone", self.warmup_ttl_as_zone),
            ("TTL altered", self.warmup_ttl_altered),
            ("AA", self.aa),
            ("CC", self.cc),
            ("CCdec.", self.cc_decreasing),
            ("AC", self.ac),
            ("AC TTL as zone", self.ac_ttl_as_zone),
            ("AC TTL altered", self.ac_ttl_altered),
            ("CA", self.ca),
            ("CAdec.", self.ca_decreasing),
        ]


def _ttl_altered(returned_ttl: Optional[int], zone_ttl: int) -> bool:
    """The paper's >10% rule for flagging TTL manipulation."""
    if returned_ttl is None:
        return False
    return abs(returned_ttl - zone_ttl) > 0.1 * zone_ttl


def classify_answers(
    answers: Sequence[StubAnswer],
    zone_ttl: int,
    rotation: RotationSchedule,
) -> Tuple[ClassificationTable, List[ClassifiedAnswer]]:
    """Classify all valid answers, per VP, in time order.

    Only successful answers carrying the instrumented AAAA payload are
    classifiable; error answers (SERVFAIL and friends) are the paper's
    "answers (disc.)" and are excluded before this function.
    """
    table = ClassificationTable()
    classified: List[ClassifiedAnswer] = []

    by_vp: Dict[Tuple[int, str], List[StubAnswer]] = {}
    for answer in answers:
        if not answer.is_success or answer.serial is None:
            continue
        by_vp.setdefault((answer.probe_id, answer.resolver), []).append(answer)

    for vp_answers in by_vp.values():
        vp_answers.sort(key=lambda item: item.sent_at)
        table.answers_valid += len(vp_answers)
        if len(vp_answers) == 1:
            table.one_answer_vps += 1
            continue

        previous_serial: Optional[int] = None
        cache_valid_until: Optional[float] = None
        for index, answer in enumerate(vp_answers):
            returned_ttl = answer.returned_ttl
            altered = _ttl_altered(returned_ttl, zone_ttl)
            decreased = (
                previous_serial is not None
                and answer.serial is not None
                and answer.serial < previous_serial
            )
            if index == 0:
                table.warmup += 1
                if altered:
                    table.warmup_ttl_altered += 1
                else:
                    table.warmup_ttl_as_zone += 1
                answer_class = AnswerClass.WARMUP
            else:
                current_serial = rotation.serial_at(answer.sent_at)
                from_cache = (
                    answer.serial is not None and answer.serial < current_serial
                )
                expected_cache = (
                    cache_valid_until is not None
                    and answer.sent_at < cache_valid_until
                )
                if from_cache and expected_cache:
                    answer_class = AnswerClass.CC
                    table.cc += 1
                    if decreased:
                        table.cc_decreasing += 1
                elif from_cache:
                    answer_class = AnswerClass.CA
                    table.ca += 1
                    if decreased:
                        table.ca_decreasing += 1
                elif expected_cache:
                    answer_class = AnswerClass.AC
                    table.ac += 1
                    if altered:
                        table.ac_ttl_altered += 1
                    else:
                        table.ac_ttl_as_zone += 1
                else:
                    answer_class = AnswerClass.AA
                    table.aa += 1
            classified.append(
                ClassifiedAnswer(answer, answer_class, altered, decreased)
            )
            previous_serial = answer.serial
            if answer.answered_at is not None and returned_ttl is not None:
                cache_valid_until = answer.answered_at + returned_ttl

    return table, classified


@dataclass
class MissAttribution:
    """Table 3: where cache misses (AC answers) enter the DNS."""

    ac_total: int = 0
    public_r1: int = 0
    google_r1: int = 0
    other_public_r1: int = 0
    non_public_r1: int = 0
    google_rn: int = 0
    other_rn: int = 0

    def as_rows(self) -> List[Tuple[str, int]]:
        return [
            ("AC Answers", self.ac_total),
            ("Public R1", self.public_r1),
            ("Google Public R1", self.google_r1),
            ("other Public R1", self.other_public_r1),
            ("Non-Public R1", self.non_public_r1),
            ("Google Public Rn", self.google_rn),
            ("other Rn", self.other_rn),
        ]


def classify_misses_by_resolver(
    classified: Iterable[ClassifiedAnswer],
    registry: ResolverRegistry,
    query_log: Optional[QueryLog] = None,
    zone_origin: Optional[Name] = None,
) -> MissAttribution:
    """Attribute each AC answer to public vs non-public infrastructure.

    The first-hop (R1) attribution uses the address the probe queried
    (the paper's public-resolver list lookup). For misses entering at
    non-public R1s, the egress recursive (Rn) seen at the authoritative
    is attributed via the query log, like the paper's §3.5 matching of
    query source and round.
    """
    attribution = MissAttribution()
    qlog_index: Dict[Name, List] = {}
    if query_log is not None:
        for entry in query_log.entries:
            qlog_index.setdefault(entry.qname, []).append(entry)

    for item in classified:
        if item.answer_class != AnswerClass.AC:
            continue
        attribution.ac_total += 1
        resolver = item.answer.resolver
        if registry.is_public(resolver):
            attribution.public_r1 += 1
            if registry.is_google(resolver):
                attribution.google_r1 += 1
            else:
                attribution.other_public_r1 += 1
            continue
        attribution.non_public_r1 += 1
        if query_log is None or zone_origin is None:
            attribution.other_rn += 1
            continue
        qname = zone_origin.child(str(item.answer.probe_id))
        window_start = item.answer.sent_at - 0.5
        window_end = (
            item.answer.answered_at
            if item.answer.answered_at is not None
            else item.answer.sent_at + 5.0
        )
        sources = {
            entry.src
            for entry in qlog_index.get(qname, [])
            if window_start <= entry.time <= window_end
        }
        if any(registry.is_google(source) for source in sources):
            attribution.google_rn += 1
        else:
            attribution.other_rn += 1
    return attribution
