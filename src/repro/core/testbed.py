"""Assembles one complete measurement world.

A :class:`Testbed` wires together everything an experiment needs: the
zone tree (root → parent TLD → measurement zone), replicated
authoritative servers with query logging, the probe population, zone
rotation (serial bump every 10 minutes, §3.2), cache churn, and the DDoS
attack schedule. Experiment runners configure a testbed, schedule probing
rounds, run the clock, and hand the raw results to the analysis code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.attackload import AttackLoadSpec, build_attack_load
from repro.clients.population import (
    Population,
    PopulationConfig,
    build_population,
)
from repro.defense import DefenseSpec, build_defense
from repro.core.classification import RotationSchedule
from repro.dnscore.name import Name
from repro.dnscore.zone import Zone
from repro.netem.address import default_allocator
from repro.netem.attack import AttackSchedule, AttackWindow
from repro.netem.link import PerHostLatency, draw_authoritative_base
from repro.netem.transport import Network
from repro.obs import Observability, ObsSpec
from repro.servers.authoritative import AuthoritativeServer
from repro.servers.hierarchy import (
    PROBE_ANSWER_PREFIX,
    ZoneSpec,
    attach_probe_synthesizer,
    build_hierarchy,
)
from repro.servers.querylog import QueryLog
from repro.simcore.events import DEFAULT_QUEUE_BACKEND
from repro.simcore.rng import RandomStreams
from repro.simcore.simulator import Simulator


@dataclass(frozen=True)
class TestbedConfig:
    """Scenario-wide parameters (experiment runners override per run).

    Frozen like every spec dataclass: the run's disk-cache key is
    computed from these fields, so they must not drift after a testbed
    is built (enforced by the ``spec-hygiene`` lint rule).
    """

    # Not a pytest test class, despite the name.
    __test__ = False

    seed: int = 42
    # The measurement zone's record TTL (the sweep variable of §3).
    zone_ttl: int = 3600
    # Negative-cache TTL of the measurement zone (§6.1: 60 s).
    negative_ttl: int = 60
    # Zone serial rotation interval (§3.2: every 10 minutes).
    rotation_interval: float = 600.0
    # TTL the parent publishes in referrals; None = same as zone_ttl.
    delegation_ttl: Optional[int] = None
    root_server_count: int = 2
    tld_server_count: int = 2
    test_server_count: int = 2
    zone_origin: str = "cachetest.nl."
    tld_origin: str = "nl."
    # Baseline packet loss: produces the pre-attack ~5% failure floor the
    # paper observes before any DDoS (§5.4).
    baseline_loss: float = 0.004
    wire_format: bool = False
    population: PopulationConfig = field(default_factory=PopulationConfig)
    # Observability layers (tracing / metrics / profiling); None = all off.
    obs: Optional[ObsSpec] = None
    # Adversarial query streams (repro.attackload); None = no attackers.
    attack_load: Optional[AttackLoadSpec] = None
    # Authoritative-side defense layers (repro.defense); None = the
    # paper's infinitely-fast, undefended servers.
    defense: Optional[DefenseSpec] = None
    # Event-queue backend for the kernel ("auto", "heap", "wheel",
    # "calendar", or "native" when built). Every backend yields identical
    # event ordering and therefore identical results; the knob only
    # trades wall time, but it participates in the cache key like any
    # other config field.
    queue_backend: str = DEFAULT_QUEUE_BACKEND


class Testbed:
    """A fully wired simulation world."""

    # Not a pytest test class, despite the name.
    __test__ = False

    def __init__(self, config: Optional[TestbedConfig] = None) -> None:
        self.config = config or TestbedConfig()
        config = self.config
        self.sim = Simulator(queue_backend=config.queue_backend)
        self.obs = Observability.build(config.obs, self.sim)
        tracer = self.obs.tracer
        registry = self.obs.registry
        self.streams = RandomStreams(config.seed)
        self.allocator = default_allocator()
        self.latency = PerHostLatency(jitter=0.2)
        self.attacks = AttackSchedule()
        self.network = Network(
            self.sim,
            self.streams,
            latency=self.latency,
            attacks=self.attacks,
            baseline_loss=config.baseline_loss,
            wire_format=config.wire_format,
            tracer=tracer,
        )
        self.rotation = RotationSchedule(
            initial_serial=1, interval=config.rotation_interval
        )
        rng = self.streams.stream("testbed")

        # ------------------------------------------------------------------
        # Zone tree.
        # ------------------------------------------------------------------
        self.origin = Name.from_text(config.zone_origin)
        tld = Name.from_text(config.tld_origin)
        root_ns = {
            f"{chr(ord('a') + index)}.root-servers.test.": self.allocator.allocate(
                "authoritatives"
            )
            for index in range(config.root_server_count)
        }
        tld_label = config.tld_origin.rstrip(".")
        tld_ns = {
            f"ns{index + 1}.dns.{config.tld_origin}": self.allocator.allocate(
                "authoritatives"
            )
            for index in range(config.tld_server_count)
        }
        test_ns = {
            f"ns{index + 1}.{config.zone_origin}": self.allocator.allocate(
                "authoritatives"
            )
            for index in range(config.test_server_count)
        }
        specs = [
            ZoneSpec(".", root_ns),
            ZoneSpec(config.tld_origin, tld_ns),
            ZoneSpec(
                config.zone_origin,
                test_ns,
                ns_ttl=config.zone_ttl,
                a_ttl=config.zone_ttl,
                delegation_ttl=(
                    config.delegation_ttl
                    if config.delegation_ttl is not None
                    else config.zone_ttl
                ),
                negative_ttl=config.negative_ttl,
            ),
        ]
        self.zones: Dict[Name, Zone] = build_hierarchy(specs)
        self.test_zone = self.zones[self.origin]
        attach_probe_synthesizer(
            self.test_zone, PROBE_ANSWER_PREFIX, config.zone_ttl
        )

        # ------------------------------------------------------------------
        # Authoritative servers.
        # ------------------------------------------------------------------
        self.query_log = QueryLog()  # measurement-zone servers
        self.parent_query_log = QueryLog()  # root + TLD servers
        self.root_servers: List[AuthoritativeServer] = []
        self.tld_servers: List[AuthoritativeServer] = []
        self.test_servers: List[AuthoritativeServer] = []
        for host, address in root_ns.items():
            self.latency.set_base(address, draw_authoritative_base(rng))
            self.root_servers.append(
                AuthoritativeServer(
                    self.sim,
                    self.network,
                    address,
                    [self.zones[Name(())]],
                    name=f"root-{host.split('.')[0]}",
                    query_log=self.parent_query_log,
                )
            )
        for host, address in tld_ns.items():
            self.latency.set_base(address, draw_authoritative_base(rng))
            self.tld_servers.append(
                AuthoritativeServer(
                    self.sim,
                    self.network,
                    address,
                    [self.zones[tld]],
                    name=f"tld-{host.split('.')[0]}",
                    query_log=self.parent_query_log,
                )
            )
        # Defense layers (repro.defense) guard the measurement-zone
        # servers only — they are the attack's victims. The stack is
        # built solely when a layer is on, so undefended runs take the
        # exact pre-defense code path (and draw no "defense" stream).
        self.defense_stack = None
        if config.defense is not None and config.defense.enabled:
            self.defense_stack = build_defense(
                config.defense, self.streams.stream("defense")
            )
        for host, address in test_ns.items():
            self.latency.set_base(address, draw_authoritative_base(rng))
            self.test_servers.append(
                AuthoritativeServer(
                    self.sim,
                    self.network,
                    address,
                    [self.test_zone],
                    name=f"at-{host.split('.')[0]}",
                    query_log=self.query_log,
                    tracer=tracer,
                    defense=(
                        self.defense_stack.make_pipeline()
                        if self.defense_stack is not None
                        else None
                    ),
                )
            )
        self.root_hints = [server.address for server in self.root_servers]
        self.test_ns_names = [Name.from_text(host) for host in test_ns]
        self.test_server_addresses = [
            server.address for server in self.test_servers
        ]

        # Offered-load vantage (paper: "queries before they are dropped"):
        # a tap in front of each measurement-zone server records every
        # query regardless of the attack drop. When the flight recorder's
        # sketches are armed, the same tap feeds per-source accounting —
        # one closure per configuration so disabled runs pay nothing.
        self.offered_query_log = QueryLog()
        self.source_sketch = None
        recorder = self.obs.recorder
        if recorder is not None and recorder.spec.sketch:
            from repro.obs.sketch import SourceSketch

            self.source_sketch = SourceSketch(
                epsilon=recorder.spec.sketch_epsilon,
                delta=recorder.spec.sketch_delta,
                topk=recorder.spec.sketch_topk,
            )
        for server in self.test_servers:
            self.network.register_tap(
                server.address, self._make_offered_tap(server.name)
            )

        # ------------------------------------------------------------------
        # Client population.
        # ------------------------------------------------------------------
        self.population: Population = build_population(
            self.sim,
            self.network,
            self.streams,
            self.root_hints,
            config=config.population,
            allocator=self.allocator,
            latency=self.latency,
            zone_origin=self.origin,
            tracer=tracer,
            metrics=registry,
        )

        # ------------------------------------------------------------------
        # Attack load (repro.attackload). Built after the population so
        # every legitimate allocation and stream draw happens in the same
        # order as without it; attacker events then ride their own
        # "attackload" stream.
        # ------------------------------------------------------------------
        self.attack_load = None
        if config.attack_load is not None and config.attack_load.attackers > 0:
            self.attack_load = build_attack_load(self)
            self.attack_load.schedule()
            if self.defense_stack is not None:
                self.defense_stack.mark_attackers(
                    self.attack_load.attacker_sources
                )

        # Pull-style collectors: state that already lives on components is
        # sampled at snapshot time rather than double-counted on hot paths.
        if registry is not None:
            registry.register_collector("net", self.network.counters.as_dict)
            # Live/dead (cancelled-pending) event counts: makes the
            # queue's lazy-deletion bloat visible in metrics snapshots.
            registry.register_collector("queue", self.sim.queue_stats)
            registry.register_collector(
                "auth.served",
                lambda: {
                    server.name: server.queries_received
                    for server in self.test_servers
                },
            )
            registry.register_collector(
                "auth.offered", self.offered_query_log.per_server_counts
            )
            if self.defense_stack is not None:
                registry.register_collector(
                    "defense", self.defense_stack.stats.as_dict
                )
            if self.attack_load is not None:
                registry.register_collector(
                    "attack", self.attack_load.stats.as_dict
                )
            if self.source_sketch is not None:
                registry.register_collector(
                    "sketch", self.source_sketch.summary
                )

    def _make_offered_tap(self, server_name: str):
        sketch = self.source_sketch
        if sketch is None:

            def tap(packet) -> None:
                message = packet.message
                if message.is_response or message.question is None:
                    return
                self.offered_query_log.record(
                    self.sim.now,
                    packet.src,
                    message.question.qname,
                    message.question.qtype,
                    server_name,
                )

            return tap

        def sketch_tap(packet) -> None:
            message = packet.message
            if message.is_response or message.question is None:
                return
            sketch.update(packet.src)
            self.offered_query_log.record(
                self.sim.now,
                packet.src,
                message.question.qname,
                message.question.qtype,
                server_name,
            )

        return sketch_tap

    # ------------------------------------------------------------------
    # Scheduling helpers
    # ------------------------------------------------------------------
    def schedule_rotations(self, duration: float) -> None:
        """Bump the zone serial every rotation interval (new zone file)."""
        interval = self.config.rotation_interval
        count = int(duration // interval)
        for step in range(1, count + 1):
            self.sim.at(
                step * interval,
                self.test_zone.set_serial,
                self.rotation.initial_serial + step,
            )

    def schedule_probing(
        self,
        start: float,
        interval: float,
        rounds: int,
        spread: float = 300.0,
    ) -> None:
        self.population.schedule_rounds(
            start,
            interval,
            rounds,
            spread,
            self.streams.stream("probing"),
        )

    def schedule_metric_snapshots(self, interval: float, rounds: int) -> None:
        """Snapshot the registry at the end of each probing round.

        No-op unless ``--metrics`` asked for per-round snapshots: a
        timeline-only run builds a registry for the flight recorder to
        sample, but must not also grow per-round snapshot series.
        Experiments typically take one more snapshot manually after
        :meth:`run` returns, capturing the grace-period tail.
        """
        registry = self.obs.registry
        if registry is None or not self.obs.spec.metrics:
            return
        for round_index in range(rounds):
            boundary = (round_index + 1) * interval
            self.sim.at(boundary, registry.snapshot, boundary, round_index)

    def take_metric_snapshot(self, round_index: int) -> None:
        """Snapshot now (used for the final post-run reading)."""
        registry = self.obs.registry
        if registry is not None and self.obs.spec.metrics:
            registry.snapshot(self.sim.now, round_index)

    # Observability accessors: TestbedSnapshot duck-types these, so
    # analysis code works against live and detached testbeds alike.
    @property
    def spans(self):
        return self.obs.spans

    @property
    def metric_snapshots(self):
        return self.obs.metric_snapshots

    @property
    def timeline_points(self):
        return self.obs.timeline_points

    @property
    def defense_stats(self):
        """Aggregate defense counters as a dict, or None when undefended.
        TestbedSnapshot carries the same attribute for detached results."""
        if self.defense_stack is None:
            return None
        return self.defense_stack.stats.as_dict()

    @property
    def attack_stats(self):
        """Attack-load counters as a dict, or None without attackers."""
        if self.attack_load is None:
            return None
        return self.attack_load.stats.as_dict()

    def profile_summary(self):
        return self.obs.profile_summary()

    def schedule_churn(self, duration: float) -> int:
        return self.population.schedule_cache_churn(
            duration, self.streams.stream("churn")
        )

    def add_attack(
        self,
        start: float,
        duration: float,
        loss_fraction: float,
        servers: str = "both",
        label: str = "ddos",
        queue_delay: float = 0.0,
    ) -> AttackWindow:
        """Attack the measurement-zone authoritatives.

        ``servers``: "both" (all of them) or "one" (only the first), the
        paper's Experiment D variant. ``queue_delay`` enables the
        queueing-latency extension (§5.1 future work), off by default.
        """
        if servers == "both":
            targets = list(self.test_server_addresses)
        elif servers == "one":
            targets = [self.test_server_addresses[0]]
        else:
            raise ValueError(f"unknown server selection {servers!r}")
        window = AttackWindow(
            targets,
            start,
            start + duration,
            loss_fraction,
            label=label,
            queue_delay=queue_delay,
        )
        self.attacks.add(window)
        return window

    def run(self, duration: float, grace: float = 20.0) -> None:
        """Run the world for ``duration`` simulated seconds (+`grace` for
        resolutions still in flight at the end)."""
        until = duration + grace
        recorder = self.obs.recorder
        if recorder is not None:
            # The flight recorder covers the full run including the
            # grace tail; its final sample lands exactly at ``until``,
            # the same instant as the final metrics snapshot, so the two
            # readings reconcile exactly.
            recorder.schedule(until)
        self.sim.run(until=until)
