"""One measurement probe: a stub resolver plus its first-hop recursives."""

from __future__ import annotations

from typing import List, Sequence

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType
from repro.resolvers.stub import StubAnswer, StubResolver


class Probe:
    """An Atlas-like probe.

    Each probe owns a stub resolver and queries a name unique to itself
    (``{probe_id}.<zone>``), once per round, to *each* of its first-hop
    recursives — every (probe, recursive) pair being one vantage point.
    """

    def __init__(
        self,
        probe_id: int,
        stub: StubResolver,
        qname: Name,
        r1_kinds: Sequence[str],
    ) -> None:
        self.probe_id = probe_id
        self.stub = stub
        self.qname = qname
        # Parallel to stub.recursives: the profile kind of each R1.
        self.r1_kinds: List[str] = list(r1_kinds)
        if len(self.r1_kinds) != len(stub.recursives):
            raise ValueError("r1_kinds must match the stub's recursive list")

    @property
    def vp_count(self) -> int:
        return len(self.stub.recursives)

    def query_round(self, round_index: int, qtype: RRType = RRType.AAAA) -> None:
        self.stub.query_round(self.qname, qtype, round_index)

    def results(self) -> List[StubAnswer]:
        return self.stub.results

    def __repr__(self) -> str:
        return f"<Probe {self.probe_id} vps={self.vp_count}>"
