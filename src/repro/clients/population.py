"""The vantage-point population builder.

Builds the client half of the paper's measurement world: probes, their
first-hop recursives (R1), and the recursive infrastructure behind them
(Rn), with a behavior mix calibrated to the paper's observations:

* ~1.7 first-hop recursives per probe (15k VPs from 9k probes),
* ~30% of first-hop choices route via public services (half of all cache
  misses, three quarters of those Google-like; Table 3),
* ISP-side fragmentation from load-balanced resolver clusters,
* a small share of TTL-capping resolvers (2% altering TTLs ≤ 1 h; ~30%
  shortening 1-day TTLs; Table 2),
* occasional cache flushes (restarts), and
* BIND-like and Unbound-like retry behavior among full resolvers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.clients.probe import Probe
from repro.clients.publicdns import (
    PublicServiceSpec,
    ResolverRegistry,
    default_public_services,
)
from repro.dnscore.name import Name
from repro.netem.address import AddressAllocator, default_allocator
from repro.netem.link import (
    PerHostLatency,
    draw_client_base,
    draw_recursive_base,
)
from repro.netem.transport import Network
from repro.resolvers.cache import CacheConfig
from repro.resolvers.forwarder import ForwarderConfig, ForwardingResolver
from repro.resolvers.pool import PoolConfig, PublicResolverPool
from repro.resolvers.recursive import RecursiveResolver, ResolverConfig
from repro.resolvers.retry import bind_profile, forwarder_profile, unbound_profile
from repro.resolvers.stub import StubAnswer, StubResolver
from repro.simcore.rng import RandomStreams
from repro.simcore.simulator import Simulator


@dataclass
class ProfileShares:
    """How VPs pick their first-hop recursive (public shares live on the
    service specs; these three cover the non-public remainder)."""

    isp_direct: float = 0.26
    isp_cluster: float = 0.26
    forwarder: float = 0.18


@dataclass
class PopulationConfig:
    """All the knobs of the client world."""

    probe_count: int = 1500
    # Distribution of local recursives per probe: mean ~1.7 VPs/probe.
    recursives_per_probe: Tuple[Tuple[int, float], ...] = (
        (1, 0.50),
        (2, 0.35),
        (3, 0.15),
    )
    shares: ProfileShares = field(default_factory=ProfileShares)
    public_services: List[PublicServiceSpec] = field(
        default_factory=default_public_services
    )
    # ISP infrastructure shape.
    isp_site_count: Optional[int] = None  # default: probe_count // 15
    cluster_backend_range: Tuple[int, int] = (3, 6)
    # Resolver software mix (full resolvers).
    unbound_fraction: float = 0.5
    # TTL manipulation shares.
    ttl_cap_small_fraction: float = 0.02
    ttl_cap_day_fraction: float = 0.10
    # Cache churn: expected flushes per resolver per hour.
    flush_rate_per_hour: float = 0.02
    # Forwarder specifics.
    forwarder_cache_fraction: float = 0.5
    forwarder_public_upstream_fraction: float = 0.05
    # Stub behavior.
    stub_timeout: float = 5.0
    # Dead-probe share: probes whose recursives never answer (the
    # paper's "probes (disc.)", ~4.5% in Table 1).
    broken_probe_fraction: float = 0.030
    # Misconfigured first-hops that answer REFUSED (part of the paper's
    # "answers (disc.)", ~3.5–4.9% of answers).
    refusing_r1_fraction: float = 0.010
    # Resolvers that answer clients from referral/glue data rather than
    # re-querying the child zone (the ~5% minority of Appendix A's
    # Table 5 that returns the parent's TTL).
    serve_glue_fraction: float = 0.05
    # Ablation switches (DESIGN.md §5): strip one defense mechanism from
    # the whole population to measure its marginal contribution.
    disable_retries: bool = False
    disable_caching: bool = False
    disable_serve_stale: bool = False


class Population:
    """Everything the builder produced, plus round-scheduling helpers."""

    def __init__(
        self,
        sim: Simulator,
        config: PopulationConfig,
        probes: List[Probe],
        results: List[StubAnswer],
        registry: ResolverRegistry,
        recursives: List[RecursiveResolver],
        forwarders: List[ForwardingResolver],
        pools: List[PublicResolverPool],
    ) -> None:
        self.sim = sim
        self.config = config
        self.probes = probes
        self.results = results
        self.registry = registry
        self.recursives = recursives
        self.forwarders = forwarders
        self.pools = pools

    @property
    def vp_count(self) -> int:
        return sum(probe.vp_count for probe in self.probes)

    def schedule_rounds(
        self,
        start: float,
        interval: float,
        count: int,
        spread: float,
        rng: random.Random,
    ) -> None:
        """Schedule ``count`` probing rounds.

        Atlas intentionally spreads each round's queries over about five
        minutes (§5.2); each probe gets an independent offset per round.
        """
        for round_index in range(count):
            round_start = start + round_index * interval
            for probe in self.probes:
                offset = rng.random() * spread
                self.sim.at(
                    round_start + offset, probe.query_round, round_index
                )

    def schedule_cache_churn(
        self, duration: float, rng: random.Random
    ) -> int:
        """Schedule random cache flushes (restarts) over ``duration``.

        Returns the number of flush events scheduled.
        """
        rate = self.config.flush_rate_per_hour / 3600.0
        flushables = list(self.recursives)
        for pool in self.pools:
            flushables.extend(pool.backends)
        flushables.extend(
            forwarder for forwarder in self.forwarders if forwarder.cache
        )
        scheduled = 0
        if rate <= 0:
            return 0
        for target in flushables:
            time = rng.expovariate(rate)
            while time < duration:
                self.sim.at(time, target.flush_caches)
                scheduled += 1
                time += rng.expovariate(rate)
        return scheduled


class RefusingResolver:
    """A misconfigured first-hop that REFUSEs everything.

    Produces the paper's discarded answers (REFUSED/SERVFAIL error
    codes, Table 1 "answers (disc.)").
    """

    def __init__(self, sim: Simulator, network: Network, address: str) -> None:
        self.sim = sim
        self.network = network
        self.address = address
        network.register(address, self.on_packet)

    def on_packet(self, packet) -> None:
        from repro.dnscore.message import make_response
        from repro.dnscore.rrtypes import Rcode

        if packet.message.is_response:
            return
        response = make_response(packet.message, rcode=Rcode.REFUSED)
        self.network.send(self.address, packet.src, response)


def _pick_unused(
    rng: random.Random, choices: Sequence[str], used: Sequence[str]
) -> str:
    """A random choice avoiding addresses the probe already uses.

    A VP is a distinct (probe, recursive) pair, so a probe never lists
    the same recursive twice. Falls back to a duplicate only when every
    candidate is taken (tiny populations in tests).
    """
    for _ in range(8):
        candidate = rng.choice(choices)
        if candidate not in used:
            return candidate
    return rng.choice(choices)


def build_population(
    sim: Simulator,
    network: Network,
    streams: RandomStreams,
    root_hints: Sequence[str],
    config: Optional[PopulationConfig] = None,
    allocator: Optional[AddressAllocator] = None,
    latency: Optional[PerHostLatency] = None,
    zone_origin: Optional[Name] = None,
    tracer=None,
    metrics=None,
) -> Population:
    """Construct the full client world on the given network.

    ``zone_origin`` is the measurement zone; each probe's unique query
    name is ``{probe_id}.<zone_origin>``.

    ``tracer``/``metrics`` are the observability sinks (or ``None``),
    threaded into every stub, forwarder, pool, and recursive built here.
    """
    config = config or PopulationConfig()
    allocator = allocator or default_allocator()
    registry = ResolverRegistry()
    rng = streams.stream("population")
    results: List[StubAnswer] = []
    origin = zone_origin or Name.from_text("cachetest.nl.")

    recursives: List[RecursiveResolver] = []
    forwarders: List[ForwardingResolver] = []
    pools: List[PublicResolverPool] = []

    def resolver_rng() -> random.Random:
        return random.Random(rng.getrandbits(64))

    def make_resolver_config(public_backend_of: Optional[PublicServiceSpec]) -> ResolverConfig:
        """Draw one full-resolver personality."""
        cache = CacheConfig()
        resolver_config = ResolverConfig(cache=cache)
        if rng.random() < config.unbound_fraction:
            resolver_config.retry = unbound_profile()
            resolver_config.chase_ns_aaaa = True
            resolver_config.requery_delegation = True
            cache.max_ttl = 86400
        else:
            resolver_config.retry = bind_profile()
            resolver_config.chase_ns_aaaa = rng.random() < 0.5
            cache.max_ttl = 7 * 86400
        # Some resolvers give up quickly and SERVFAIL inside the stub's
        # 5 s window; most keep retrying past it (the "no answer" VPs).
        if rng.random() < 0.25:
            resolver_config.retry.resolution_deadline = 2.5 + rng.random() * 2.0
        # TTL caps: a small share caps aggressively (EC2-style 60 s
        # rewrites), a larger share caps somewhere below one day.
        draw = rng.random()
        if draw < config.ttl_cap_small_fraction:
            cache.max_ttl = rng.choice((60, 300, 900, 1800))
        elif draw < config.ttl_cap_small_fraction + config.ttl_cap_day_fraction:
            cache.max_ttl = min(cache.max_ttl, rng.choice((7200, 10800, 21600, 43200)))
        if rng.random() < config.serve_glue_fraction:
            resolver_config.serve_glue_answers = True
        if public_backend_of is not None:
            cache.max_ttl = min(cache.max_ttl, public_backend_of.max_ttl)
            if rng.random() < public_backend_of.serve_stale_fraction:
                resolver_config.serve_stale = True
        # Ablations.
        if config.disable_retries:
            resolver_config.retry.tries_per_server = 1
            resolver_config.retry.max_total_attempts = 1
            resolver_config.retry.requery_parent_on_failure = False
        if config.disable_caching:
            # "No caching" caps every entry at 5 s: referral state still
            # carries one resolution (an iterative resolver cannot work
            # with literally zero state), but nothing survives between
            # client queries.
            cache.max_ttl = 5
        if config.disable_serve_stale:
            resolver_config.serve_stale = False
        return resolver_config

    def set_base(address: str, draw) -> None:
        if latency is not None:
            latency.set_base(address, draw(rng))

    # ------------------------------------------------------------------
    # ISP infrastructure: single resolvers and load-balanced clusters.
    # ------------------------------------------------------------------
    site_count = config.isp_site_count or max(8, config.probe_count // 15)
    single_isp_addresses: List[str] = []
    cluster_ingresses: List[str] = []
    # Roughly two thirds of sites are single resolvers, one third clusters.
    for site_index in range(site_count):
        if site_index % 3 != 2:
            address = allocator.allocate("recursives")
            set_base(address, draw_recursive_base)
            resolver = RecursiveResolver(
                sim,
                network,
                address,
                root_hints,
                config=make_resolver_config(None),
                name=f"isp{site_index}",
                rng=resolver_rng(),
                tracer=tracer,
                metrics=metrics,
            )
            recursives.append(resolver)
            registry.register_recursive(address, "isp")
            single_isp_addresses.append(address)
        else:
            backend_count = rng.randint(*config.cluster_backend_range)
            ingress = allocator.allocate("recursives")
            backends = [
                allocator.allocate("recursives") for _ in range(backend_count)
            ]
            set_base(ingress, draw_recursive_base)
            for backend_address in backends:
                set_base(backend_address, draw_recursive_base)
            pool = PublicResolverPool(
                sim,
                network,
                ingress,
                backends,
                root_hints,
                config=PoolConfig(
                    backend_count=backend_count,
                    balancing="random",
                ),
                name=f"cluster{site_index}",
                rng=resolver_rng(),
                backend_config_factory=lambda index: make_resolver_config(None),
                tracer=tracer,
                metrics=metrics,
            )
            pools.append(pool)
            registry.register_recursive(ingress, "cluster")
            for backend_address in backends:
                registry.register_recursive(backend_address, "cluster-backend")
            cluster_ingresses.append(ingress)

    # ------------------------------------------------------------------
    # Public services.
    # ------------------------------------------------------------------
    public_choices: List[Tuple[str, float]] = []
    for spec in config.public_services:
        ingress = allocator.allocate("anycast")
        backends = [
            allocator.allocate("public") for _ in range(spec.backend_count)
        ]
        set_base(ingress, draw_recursive_base)
        for backend_address in backends:
            set_base(backend_address, draw_recursive_base)
        pool = PublicResolverPool(
            sim,
            network,
            ingress,
            backends,
            root_hints,
            config=PoolConfig(
                backend_count=spec.backend_count,
                balancing=spec.balancing,
                sticky_rebalance=spec.sticky_rebalance,
            ),
            name=spec.key,
            rng=resolver_rng(),
            backend_config_factory=lambda index, spec=spec: make_resolver_config(spec),
            tracer=tracer,
            metrics=metrics,
        )
        pools.append(pool)
        registry.register_public_ingress(ingress, spec.key, spec.google_like)
        for backend_address in backends:
            registry.register_public_backend(
                backend_address, spec.key, spec.google_like
            )
        public_choices.append((ingress, spec.vp_share))

    # ------------------------------------------------------------------
    # Probes and their first-hop recursives.
    # ------------------------------------------------------------------
    shares = config.shares
    public_total = sum(share for _, share in public_choices)
    profile_weights = [
        ("isp", shares.isp_direct),
        ("cluster", shares.isp_cluster),
        ("forwarder", shares.forwarder),
        ("public", public_total),
    ]
    total_weight = sum(weight for _, weight in profile_weights)

    def pick_profile() -> str:
        draw = rng.random() * total_weight
        for profile, weight in profile_weights:
            if draw < weight:
                return profile
            draw -= weight
        return "isp"

    def pick_public_ingress() -> str:
        draw = rng.random() * public_total
        for ingress, weight in public_choices:
            if draw < weight:
                return ingress
            draw -= weight
        return public_choices[-1][0]

    vp_dist = list(config.recursives_per_probe)
    probes: List[Probe] = []
    for probe_id in range(1, config.probe_count + 1):
        probe_address = allocator.allocate("probes")
        set_base(probe_address, draw_client_base)
        draw = rng.random()
        r1_count = vp_dist[-1][0]
        for count, probability in vp_dist:
            if draw < probability:
                r1_count = count
                break
            draw -= probability
        r1_addresses: List[str] = []
        r1_kinds: List[str] = []
        broken_probe = rng.random() < config.broken_probe_fraction
        for _ in range(r1_count):
            if broken_probe:
                # Dead probe: its recursives blackhole every query.
                blackhole = allocator.allocate("recursives")
                r1_addresses.append(blackhole)
                r1_kinds.append("broken")
                continue
            if rng.random() < config.refusing_r1_fraction:
                refusing_address = allocator.allocate("recursives")
                set_base(refusing_address, draw_recursive_base)
                RefusingResolver(sim, network, refusing_address)
                registry.register_recursive(refusing_address, "forwarder")
                r1_addresses.append(refusing_address)
                r1_kinds.append("refusing")
                continue
            profile = pick_profile()
            if profile == "isp" and single_isp_addresses:
                choice = _pick_unused(rng, single_isp_addresses, r1_addresses)
                r1_addresses.append(choice)
                r1_kinds.append("isp")
            elif profile == "cluster" and cluster_ingresses:
                choice = _pick_unused(rng, cluster_ingresses, r1_addresses)
                r1_addresses.append(choice)
                r1_kinds.append("cluster")
            elif profile == "public" and public_choices:
                choice = pick_public_ingress()
                if choice in r1_addresses:
                    choice = _pick_unused(
                        rng,
                        [ingress for ingress, _ in public_choices],
                        r1_addresses,
                    )
                r1_addresses.append(choice)
                r1_kinds.append("public")
            else:
                # A per-probe forwarder (home router).
                fwd_address = allocator.allocate("recursives")
                set_base(fwd_address, draw_client_base)
                if (
                    rng.random() < config.forwarder_public_upstream_fraction
                    and public_choices
                ):
                    upstreams = [pick_public_ingress()]
                else:
                    upstream_count = 1 if rng.random() < 0.6 else 2
                    upstreams = [
                        rng.choice(single_isp_addresses + cluster_ingresses)
                        for _ in range(upstream_count)
                    ]
                forwarder_config = ForwarderConfig(retry=forwarder_profile())
                if config.disable_retries:
                    forwarder_config.retry.tries_per_server = 1
                    forwarder_config.retry.max_total_attempts = 1
                if (
                    rng.random() < config.forwarder_cache_fraction
                    and not config.disable_caching
                ):
                    forwarder_config.cache = CacheConfig(max_entries=10_000)
                forwarder = ForwardingResolver(
                    sim,
                    network,
                    fwd_address,
                    upstreams,
                    config=forwarder_config,
                    name=f"fwd-p{probe_id}",
                    tracer=tracer,
                    metrics=metrics,
                )
                forwarders.append(forwarder)
                registry.register_recursive(fwd_address, "forwarder")
                r1_addresses.append(fwd_address)
                r1_kinds.append("forwarder")
        stub = StubResolver(
            sim,
            network,
            probe_address,
            probe_id,
            r1_addresses,
            results=results,
            timeout=config.stub_timeout,
            tracer=tracer,
            metrics=metrics,
        )
        qname = origin.child(str(probe_id))
        probes.append(Probe(probe_id, stub, qname, r1_kinds))

    return Population(
        sim, config, probes, results, registry, recursives, forwarders, pools
    )
