"""Client-side ecosystem: probes and the vantage-point population.

The paper measures from ~9k RIPE Atlas probes whose ~15k (probe,
first-hop-recursive) pairs form the vantage points. This subpackage
builds the synthetic equivalent: a population of stub resolvers wired to
a heterogeneous mix of first-hop recursives — direct ISP resolvers,
load-balanced ISP clusters, home-router forwarders, and public anycast
services — calibrated to reproduce the caching behavior mix the paper
observed (§3.4–§3.5).
"""

from repro.clients.population import (
    Population,
    PopulationConfig,
    ProfileShares,
    build_population,
)
from repro.clients.probe import Probe
from repro.clients.publicdns import PublicServiceSpec, ResolverRegistry

__all__ = [
    "Population",
    "PopulationConfig",
    "Probe",
    "ProfileShares",
    "PublicServiceSpec",
    "ResolverRegistry",
    "build_population",
]
