"""The paper's Appendix C list of public resolver addresses.

The authors classified cache misses by matching the querying recursive
against 96 public-resolver addresses found via a DuckDuckGo search for
"public dns" on 2018-01-15. The simulation's registry tracks roles
directly, but the original list is preserved here as a methodology
artifact: analyses of *real* traces (or pcap imports) can classify
resolvers exactly the way the paper did.
"""

from __future__ import annotations

from typing import Dict, Optional

# address -> operator, verbatim from the paper's Appendix C.
PAPER_PUBLIC_RESOLVERS: Dict[str, str] = {
    "198.101.242.72": "Alternate DNS",
    "23.253.163.53": "Alternate DNS",
    "205.204.88.60": "BlockAid Public DNS (or PeerDNS)",
    "178.21.23.150": "BlockAid Public DNS (or PeerDNS)",
    "91.239.100.100": "Censurfridns",
    "89.233.43.71": "Censurfridns",
    "2001:67c:28a4::": "Censurfridns",
    "2002:d596:2a92:1:71:53::": "Censurfridns",
    "213.73.91.35": "Chaos Computer Club Berlin",
    "209.59.210.167": "Christoph Hochstatter",
    "85.214.117.11": "Christoph Hochstatter",
    "212.82.225.7": "ClaraNet",
    "212.82.226.212": "ClaraNet",
    "8.26.56.26": "Comodo Secure DNS",
    "8.20.247.20": "Comodo Secure DNS",
    "84.200.69.80": "DNS.Watch",
    "84.200.70.40": "DNS.Watch",
    "2001:1608:10:25::1c04:b12f": "DNS.Watch",
    "2001:1608:10:25::9249:d69b": "DNS.Watch",
    "104.236.210.29": "DNSReactor",
    "45.55.155.25": "DNSReactor",
    "216.146.35.35": "Dyn",
    "216.146.36.36": "Dyn",
    "80.67.169.12": "FDN",
    "2001:910:800::12": "FDN",
    "85.214.73.63": "FoeBud",
    "87.118.111.215": "FoolDNS",
    "213.187.11.62": "FoolDNS",
    "37.235.1.174": "FreeDNS",
    "37.235.1.177": "FreeDNS",
    "80.80.80.80": "Freenom World",
    "80.80.81.81": "Freenom World",
    "87.118.100.175": "German Privacy Foundation e.V.",
    "94.75.228.29": "German Privacy Foundation e.V.",
    "85.25.251.254": "German Privacy Foundation e.V.",
    "62.141.58.13": "German Privacy Foundation e.V.",
    "8.8.8.8": "Google Public DNS",
    "8.8.4.4": "Google Public DNS",
    "2001:4860:4860::8888": "Google Public DNS",
    "2001:4860:4860::8844": "Google Public DNS",
    "81.218.119.11": "GreenTeamDNS",
    "209.88.198.133": "GreenTeamDNS",
    "74.82.42.42": "Hurricane Electric",
    "2001:470:20::2": "Hurricane Electric",
    "209.244.0.3": "Level3",
    "209.244.0.4": "Level3",
    "156.154.70.1": "Neustar DNS Advantage",
    "156.154.71.1": "Neustar DNS Advantage",
    "5.45.96.220": "New Nations",
    "185.82.22.133": "New Nations",
    "198.153.192.1": "Norton DNS",
    "198.153.194.1": "Norton DNS",
    "208.67.222.222": "OpenDNS",
    "208.67.220.220": "OpenDNS",
    "2620:0:ccc::2": "OpenDNS",
    "2620:0:ccd::2": "OpenDNS",
    "58.6.115.42": "OpenNIC",
    "58.6.115.43": "OpenNIC",
    "119.31.230.42": "OpenNIC",
    "200.252.98.162": "OpenNIC",
    "217.79.186.148": "OpenNIC",
    "81.89.98.6": "OpenNIC",
    "78.159.101.37": "OpenNIC",
    "203.167.220.153": "OpenNIC",
    "82.229.244.191": "OpenNIC",
    "216.87.84.211": "OpenNIC",
    "66.244.95.20": "OpenNIC",
    "207.192.69.155": "OpenNIC",
    "72.14.189.120": "OpenNIC",
    "2001:470:8388:2:20e:2eff:fe63:d4a9": "OpenNIC",
    "2001:470:1f07:38b::1": "OpenNIC",
    "2001:470:1f10:c6::2001": "OpenNIC",
    "194.145.226.26": "PowerNS",
    "77.220.232.44": "PowerNS",
    "9.9.9.9": "Quad9",
    "2620:fe::fe": "Quad9",
    "195.46.39.39": "SafeDNS",
    "195.46.39.40": "SafeDNS",
    "193.58.251.251": "SkyDNS",
    "208.76.50.50": "SmartViper Public DNS",
    "208.76.51.51": "SmartViper Public DNS",
    "78.46.89.147": "ValiDOM",
    "88.198.75.145": "ValiDOM",
    "64.6.64.6": "Verisign",
    "64.6.65.6": "Verisign",
    "2620:74:1b::1:1": "Verisign",
    "2620:74:1c::2:2": "Verisign",
    "77.109.148.136": "Xiala.net",
    "77.109.148.137": "Xiala.net",
    "2001:1620:2078:136::": "Xiala.net",
    "2001:1620:2078:137::": "Xiala.net",
    "77.88.8.88": "Yandex.DNS",
    "77.88.8.2": "Yandex.DNS",
    "2a02:6b8::feed:bad": "Yandex.DNS",
    "2a02:6b8:0:1::feed:bad": "Yandex.DNS",
    "109.69.8.51": "puntCAT",
}


def is_on_paper_list(address: str) -> bool:
    """Would the paper have classified this address as a public resolver?"""
    return address in PAPER_PUBLIC_RESOLVERS


def operator_of(address: str) -> Optional[str]:
    """Operator name for a listed address, else None."""
    return PAPER_PUBLIC_RESOLVERS.get(address)


def is_google_address(address: str) -> bool:
    """The paper singles out Google Public DNS within the list."""
    return PAPER_PUBLIC_RESOLVERS.get(address) == "Google Public DNS"


def operators() -> Dict[str, int]:
    """Operator -> number of listed addresses."""
    counts: Dict[str, int] = {}
    for operator in PAPER_PUBLIC_RESOLVERS.values():
        counts[operator] = counts.get(operator, 0) + 1
    return counts
