"""Public resolver services and the address-role registry.

The paper classifies cache misses by matching the querying recursive
against a list of 96 public resolver addresses (Appendix C) and singling
out Google Public DNS. The simulation builds its public services
explicitly, so the registry records each address's role at construction
time; the classification code then replays the paper's method — "is this
R1/Rn on the public list? is it Google?" — against the registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set


@dataclass
class PublicServiceSpec:
    """Shape of one public DNS service in the population."""

    key: str
    # Fraction of VPs that use this service as their first-hop resolver.
    vp_share: float
    backend_count: int
    balancing: str = "random"  # "random" | "sticky"
    sticky_rebalance: float = 0.05
    # Fraction of backends experimenting with serve-stale (§5.3: mostly
    # Google and OpenDNS at measurement time).
    serve_stale_fraction: float = 0.0
    # Cache TTL cap applied by the service's backends.
    max_ttl: int = 86400
    google_like: bool = False


def default_public_services() -> list[PublicServiceSpec]:
    """The public-resolver mix calibrated to Table 3.

    About half of all cache misses come via public first-hop resolvers,
    and three quarters of those via Google-like infrastructure; Google's
    heavy front-end fan-out is modeled with per-query random balancing
    over independent backend caches.
    """
    return [
        PublicServiceSpec(
            key="google",
            vp_share=0.21,
            backend_count=12,
            balancing="random",
            serve_stale_fraction=0.25,
            max_ttl=21600,
            google_like=True,
        ),
        PublicServiceSpec(
            key="opendns",
            vp_share=0.04,
            backend_count=5,
            balancing="random",
            serve_stale_fraction=1.0,
            max_ttl=43200,
        ),
        PublicServiceSpec(
            key="quad9",
            vp_share=0.03,
            backend_count=4,
            balancing="sticky",
            sticky_rebalance=0.15,
            max_ttl=86400,
        ),
        PublicServiceSpec(
            key="other-public",
            vp_share=0.02,
            backend_count=2,
            balancing="sticky",
            sticky_rebalance=0.10,
            max_ttl=86400,
        ),
    ]


class ResolverRegistry:
    """Role bookkeeping for every resolver address in a scenario."""

    R1_KINDS = ("isp", "cluster", "forwarder", "public")

    def __init__(self) -> None:
        self._public_ingress: Set[str] = set()
        self._google_addresses: Set[str] = set()
        self._public_backends: Set[str] = set()
        self._service_of: Dict[str, str] = {}
        self._kind_of: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Registration (population builder calls these)
    # ------------------------------------------------------------------
    def register_public_ingress(self, address: str, service: str, google: bool) -> None:
        self._public_ingress.add(address)
        self._service_of[address] = service
        self._kind_of[address] = "public"
        if google:
            self._google_addresses.add(address)

    def register_public_backend(self, address: str, service: str, google: bool) -> None:
        self._public_backends.add(address)
        self._service_of[address] = service
        self._kind_of[address] = "public-backend"
        if google:
            self._google_addresses.add(address)

    def register_recursive(self, address: str, kind: str) -> None:
        if kind not in ("isp", "cluster", "cluster-backend", "forwarder"):
            raise ValueError(f"unknown recursive kind {kind!r}")
        self._kind_of[address] = kind

    # ------------------------------------------------------------------
    # Queries (classification code calls these)
    # ------------------------------------------------------------------
    def is_public(self, address: str) -> bool:
        """Would this address appear on the paper's public-resolver list?
        Ingress addresses are what clients configure, so only those are
        'on the list'; backend egress addresses are detected separately."""
        return address in self._public_ingress

    def is_public_egress(self, address: str) -> bool:
        return address in self._public_backends

    def is_google(self, address: str) -> bool:
        return address in self._google_addresses

    def service_of(self, address: str) -> Optional[str]:
        return self._service_of.get(address)

    def kind_of(self, address: str) -> Optional[str]:
        return self._kind_of.get(address)
