"""RFC 1035 master-file (zone file) parsing and serialization.

Supports the subset real operational zones use: ``$ORIGIN`` and ``$TTL``
directives, ``@`` for the origin, relative and absolute names, blank
owner fields (inherit the previous owner), comments, parenthesized
multi-line records (SOA), quoted TXT strings, and the record types the
library implements (SOA, NS, A, AAAA, CNAME, TXT, DS).

Example::

    $ORIGIN cachetest.nl.
    $TTL 3600
    @       IN SOA ns1 hostmaster ( 2018052201 7200 3600 1209600 60 )
            IN NS  ns1
            IN NS  ns2
    ns1     IN A   192.0.2.1
    ns2     IN A   192.0.2.2
    www 300 IN CNAME web
    web     IN AAAA 2001:db8::80
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.dnscore.name import Name
from repro.dnscore.records import AAAA, CNAME, DS, NS, SOA, TXT, A, Rdata
from repro.dnscore.rrtypes import RRType
from repro.dnscore.zone import Zone


class ZoneFileError(ValueError):
    """Raised with a line number for malformed zone-file input."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


# ---------------------------------------------------------------------------
# Tokenization
# ---------------------------------------------------------------------------
def _tokenize_line(line: str, line_number: int) -> Tuple[List[str], bool]:
    """Split one physical line into tokens.

    Returns (tokens, owner_blank): ``owner_blank`` is True when the line
    starts with whitespace (the record inherits the previous owner).
    Quoted strings become single tokens retaining a quote marker prefix
    so TXT data survives intact. Comments (;) are stripped.
    """
    owner_blank = line[:1] in (" ", "\t")
    tokens: List[str] = []
    index = 0
    length = len(line)
    while index < length:
        char = line[index]
        if char in " \t":
            index += 1
            continue
        if char == ";":
            break
        if char == '"':
            end = index + 1
            chunk = []
            while end < length and line[end] != '"':
                chunk.append(line[end])
                end += 1
            if end >= length:
                raise ZoneFileError(line_number, "unterminated quoted string")
            tokens.append('"' + "".join(chunk))
            index = end + 1
            continue
        if char in "()":
            tokens.append(char)
            index += 1
            continue
        end = index
        while end < length and line[end] not in ' \t;()"':
            end += 1
        tokens.append(line[index:end])
        index = end
    return tokens, owner_blank


def _logical_lines(text: str) -> Iterator[Tuple[int, List[str], bool]]:
    """Yield (line_number, tokens, owner_blank) joining ( ... ) groups."""
    pending: List[str] = []
    pending_line = 0
    pending_blank = False
    depth = 0
    for line_number, raw in enumerate(text.splitlines(), start=1):
        tokens, owner_blank = _tokenize_line(raw, line_number)
        if not tokens and depth == 0:
            continue
        if depth == 0:
            pending = []
            pending_line = line_number
            pending_blank = owner_blank
        for token in tokens:
            if token == "(":
                depth += 1
            elif token == ")":
                depth -= 1
                if depth < 0:
                    raise ZoneFileError(line_number, "unbalanced ')'")
            else:
                pending.append(token)
        if depth == 0 and pending:
            yield pending_line, pending, pending_blank
    if depth != 0:
        raise ZoneFileError(pending_line, "unbalanced '(' at end of file")


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------
def _parse_ttl(token: str, line_number: int) -> int:
    """TTL in seconds, accepting 1h/30m/2d/1w suffixes."""
    unit = 1
    text = token.lower()
    suffixes = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 604800}
    if text and text[-1] in suffixes:
        unit = suffixes[text[-1]]
        text = text[:-1]
    try:
        value = int(text)
    except ValueError as exc:
        raise ZoneFileError(line_number, f"bad TTL {token!r}") from exc
    return value * unit


def _parse_name(token: str, origin: Optional[Name], line_number: int) -> Name:
    if token == "@":
        if origin is None:
            raise ZoneFileError(line_number, "@ used without $ORIGIN")
        return origin
    if token.endswith("."):
        return Name.from_text(token)
    if origin is None:
        raise ZoneFileError(
            line_number, f"relative name {token!r} without $ORIGIN"
        )
    relative = Name.from_text(token)
    return Name(relative.labels + origin.labels)


def _parse_rdata(
    rtype: str,
    fields: List[str],
    origin: Optional[Name],
    line_number: int,
) -> Rdata:
    def need(count: int) -> None:
        if len(fields) < count:
            raise ZoneFileError(
                line_number, f"{rtype} needs {count} fields, got {len(fields)}"
            )

    try:
        if rtype == "A":
            need(1)
            return A(fields[0])
        if rtype == "AAAA":
            need(1)
            return AAAA(fields[0])
        if rtype == "NS":
            need(1)
            return NS(_parse_name(fields[0], origin, line_number))
        if rtype == "CNAME":
            need(1)
            return CNAME(_parse_name(fields[0], origin, line_number))
        if rtype == "TXT":
            need(1)
            strings = [
                field[1:] if field.startswith('"') else field
                for field in fields
            ]
            return TXT(strings)
        if rtype == "SOA":
            need(7)
            return SOA(
                _parse_name(fields[0], origin, line_number),
                _parse_name(fields[1], origin, line_number),
                int(fields[2]),
                _parse_ttl(fields[3], line_number),
                _parse_ttl(fields[4], line_number),
                _parse_ttl(fields[5], line_number),
                _parse_ttl(fields[6], line_number),
            )
        if rtype == "DS":
            need(4)
            return DS(
                int(fields[0]),
                int(fields[1]),
                int(fields[2]),
                bytes.fromhex("".join(fields[3:])),
            )
    except ZoneFileError:
        raise
    except (ValueError, TypeError) as exc:
        raise ZoneFileError(line_number, f"bad {rtype} rdata: {exc}") from exc
    raise ZoneFileError(line_number, f"unsupported record type {rtype!r}")


SUPPORTED_TYPES = {"SOA", "NS", "A", "AAAA", "CNAME", "TXT", "DS"}


def parse_zone_text(
    text: str,
    origin: Optional[str] = None,
    default_ttl: Optional[int] = None,
) -> Zone:
    """Parse a master file into a :class:`~repro.dnscore.zone.Zone`.

    The zone must contain exactly one SOA at its apex (the first SOA's
    owner defines the zone origin when ``origin`` is not given).
    """
    current_origin = Name.from_text(origin) if origin else None
    current_ttl = default_ttl
    previous_owner: Optional[Name] = None
    rows: List[Tuple[Name, int, Rdata]] = []
    soa: Optional[Tuple[Name, int, SOA]] = None

    for line_number, tokens, owner_blank in _logical_lines(text):
        if tokens[0] == "$ORIGIN":
            if len(tokens) != 2:
                raise ZoneFileError(line_number, "$ORIGIN needs one argument")
            current_origin = Name.from_text(tokens[1])
            continue
        if tokens[0] == "$TTL":
            if len(tokens) != 2:
                raise ZoneFileError(line_number, "$TTL needs one argument")
            current_ttl = _parse_ttl(tokens[1], line_number)
            continue
        if tokens[0].startswith("$"):
            raise ZoneFileError(line_number, f"unsupported directive {tokens[0]}")

        remaining = list(tokens)
        if owner_blank:
            if previous_owner is None:
                raise ZoneFileError(line_number, "no previous owner to inherit")
            owner = previous_owner
        else:
            owner = _parse_name(remaining.pop(0), current_origin, line_number)
            previous_owner = owner

        # Optional [TTL] [class] in either order, then the type.
        ttl = current_ttl
        while remaining:
            token = remaining[0].upper()
            if token in ("IN", "CH"):
                remaining.pop(0)
                continue
            if token in SUPPORTED_TYPES:
                break
            if token.isalpha():
                raise ZoneFileError(
                    line_number, f"unsupported record type {remaining[0]!r}"
                )
            ttl = _parse_ttl(remaining.pop(0), line_number)
        if not remaining:
            raise ZoneFileError(line_number, "missing record type")
        rtype = remaining.pop(0).upper()
        if ttl is None:
            raise ZoneFileError(
                line_number, "no TTL (set $TTL or a per-record TTL)"
            )
        rdata = _parse_rdata(rtype, remaining, current_origin, line_number)
        if isinstance(rdata, SOA):
            if soa is not None:
                raise ZoneFileError(line_number, "duplicate SOA")
            soa = (owner, ttl, rdata)
        else:
            rows.append((owner, ttl, rdata))

    if soa is None:
        raise ZoneFileError(0, "zone has no SOA record")
    apex, soa_ttl, soa_rdata = soa
    zone = Zone(apex, soa_rdata, soa_ttl=soa_ttl)
    for owner, ttl, rdata in rows:
        zone.add(owner, ttl, rdata)
    return zone


def zone_to_text(zone: Zone) -> str:
    """Serialize a zone back to master-file format (round-trippable)."""
    lines = [f"$ORIGIN {zone.origin}"]
    soa = zone.soa_record.rdata
    lines.append(
        f"@ {zone.soa_record.ttl} IN SOA {soa.mname} {soa.rname} "
        f"( {soa.serial} {soa.refresh} {soa.retry} {soa.expire} {soa.minimum} )"
    )
    for rrset in sorted(
        zone.rrsets(), key=lambda item: (item.name, int(item.rtype))
    ):
        if rrset.rtype == RRType.SOA:
            continue
        for record in rrset:
            lines.append(
                f"{record.name} {record.ttl} IN {record.rtype} "
                f"{_rdata_to_text(record.rdata)}"
            )
    return "\n".join(lines) + "\n"


def _rdata_to_text(rdata: Rdata) -> str:
    if isinstance(rdata, (A, AAAA)):
        return rdata.address
    if isinstance(rdata, (NS, CNAME)):
        return str(rdata.target)
    if isinstance(rdata, TXT):
        return " ".join(f'"{chunk}"' for chunk in rdata.strings)
    if isinstance(rdata, DS):
        return (
            f"{rdata.key_tag} {rdata.algorithm} {rdata.digest_type} "
            f"{rdata.digest.hex()}"
        )
    raise ValueError(f"cannot serialize {rdata!r}")
