"""Authoritative zone data and RFC 1034 lookup semantics.

A :class:`Zone` holds the RRsets of one zone (everything from its origin
down to — but not across — its zone cuts), knows its delegations, and
answers lookups with one of four statuses: ANSWER, REFERRAL, NODATA, or
NXDOMAIN. Glue records for in-zone (or stored below-cut) nameservers are
attached to referrals.

Zones may also carry a *synthesizer*: a callback that fabricates records
for names under the origin that have no stored RRset. The reproduction
uses this for the paper's per-probe names (``{probeid}.cachetest.nl``),
whose AAAA answers encode the current zone serial.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.dnscore.name import Name
from repro.dnscore.records import NS, SOA, Rdata, ResourceRecord, RRset
from repro.dnscore.rrtypes import Rcode, RRType

Synthesizer = Callable[[Name, RRType], Optional[List[ResourceRecord]]]


class LookupStatus(enum.Enum):
    """Outcome of a zone lookup."""

    ANSWER = "answer"
    REFERRAL = "referral"
    NODATA = "nodata"
    NXDOMAIN = "nxdomain"
    OUT_OF_ZONE = "out-of-zone"


class LookupResult:
    """Records and status produced by :meth:`Zone.lookup`."""

    __slots__ = ("status", "answers", "authority", "additional", "aa")

    def __init__(
        self,
        status: LookupStatus,
        answers: Optional[List[ResourceRecord]] = None,
        authority: Optional[List[ResourceRecord]] = None,
        additional: Optional[List[ResourceRecord]] = None,
    ) -> None:
        self.status = status
        self.answers = answers or []
        self.authority = authority or []
        self.additional = additional or []
        # Referrals are the one non-authoritative answer a zone gives.
        self.aa = status != LookupStatus.REFERRAL

    @property
    def rcode(self) -> Rcode:
        if self.status == LookupStatus.NXDOMAIN:
            return Rcode.NXDOMAIN
        return Rcode.NOERROR

    def __repr__(self) -> str:
        return (
            f"<LookupResult {self.status.value} an={len(self.answers)} "
            f"au={len(self.authority)} ad={len(self.additional)}>"
        )


class Zone:
    """One DNS zone: origin, RRsets, delegations, and SOA."""

    def __init__(self, origin: Name, soa: SOA, soa_ttl: int = 86400) -> None:
        self.origin = origin
        self._records: Dict[Tuple[Name, RRType], List[ResourceRecord]] = {}
        self._names: set = set()
        self._delegations: Dict[Name, List[ResourceRecord]] = {}
        self.synthesizer: Optional[Synthesizer] = None
        self.soa_record = ResourceRecord(origin, soa_ttl, soa)
        self._records[(origin, RRType.SOA)] = [self.soa_record]
        self._names.add(origin)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, name: Name, ttl: int, rdata: Rdata) -> ResourceRecord:
        """Add one record; NS records below the origin become delegations."""
        if not name.is_subdomain_of(self.origin):
            raise ValueError(f"{name} is not under zone origin {self.origin}")
        record = ResourceRecord(name, ttl, rdata)
        self._records.setdefault((name, record.rtype), []).append(record)
        # Register the name and every intermediate (empty non-terminal).
        for ancestor in name.ancestors():
            self._names.add(ancestor)
            if ancestor == self.origin:
                break
        if record.rtype == RRType.NS and name != self.origin:
            self._delegations.setdefault(name, []).append(record)
        return record

    def set_serial(self, serial: int) -> None:
        """Bump the SOA serial (zone rotation in the paper's setup)."""
        old = self.soa_record.rdata
        new_soa = SOA(
            old.mname,
            old.rname,
            serial,
            old.refresh,
            old.retry,
            old.expire,
            old.minimum,
        )
        self.soa_record = ResourceRecord(
            self.origin, self.soa_record.ttl, new_soa
        )
        self._records[(self.origin, RRType.SOA)] = [self.soa_record]

    @property
    def serial(self) -> int:
        return self.soa_record.rdata.serial

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: Name, rtype: RRType) -> List[ResourceRecord]:
        """Raw stored records for (name, type); no delegation logic."""
        return list(self._records.get((name, rtype), []))

    def _negative_authority(self) -> List[ResourceRecord]:
        """SOA for the authority section of negative answers (RFC 2308)."""
        return [self.soa_record]

    def _find_delegation(self, qname: Name) -> Optional[Name]:
        """The closest zone cut at or above ``qname`` (below the origin)."""
        for candidate in qname.ancestors():
            if candidate == self.origin:
                return None
            if candidate in self._delegations:
                return candidate
        return None

    def _glue_for(self, ns_records: List[ResourceRecord]) -> List[ResourceRecord]:
        """A/AAAA records stored in this zone for the given NS targets."""
        glue: List[ResourceRecord] = []
        for ns_record in ns_records:
            target = ns_record.rdata.target
            glue.extend(self._records.get((target, RRType.A), []))
            glue.extend(self._records.get((target, RRType.AAAA), []))
        return glue

    def lookup(self, qname: Name, qtype: RRType) -> LookupResult:
        """Answer a query against this zone's data."""
        if not qname.is_subdomain_of(self.origin):
            return LookupResult(LookupStatus.OUT_OF_ZONE)

        cut = self._find_delegation(qname)
        # DS lives on the parent side of a cut (RFC 4035): answer it
        # authoritatively instead of referring (the root DITL analysis in
        # the paper counts exactly these queries).
        if cut is not None and cut == qname and qtype == RRType.DS:
            ds_records = self._records.get((qname, RRType.DS))
            if ds_records:
                return LookupResult(
                    LookupStatus.ANSWER, answers=list(ds_records)
                )
            return LookupResult(
                LookupStatus.NODATA, authority=self._negative_authority()
            )
        # A query *for* the NS RRset at the cut owner itself is still a
        # referral from the parent's perspective (paper Appendix A).
        if cut is not None:
            ns_records = self._delegations[cut]
            return LookupResult(
                LookupStatus.REFERRAL,
                authority=list(ns_records),
                additional=self._glue_for(ns_records),
            )

        exact = self._records.get((qname, qtype))
        if exact:
            return LookupResult(LookupStatus.ANSWER, answers=list(exact))

        cname = self._records.get((qname, RRType.CNAME))
        if cname and qtype != RRType.CNAME:
            return LookupResult(LookupStatus.ANSWER, answers=list(cname))

        if self.synthesizer is not None:
            synthesized = self.synthesizer(qname, qtype)
            if synthesized is not None:
                if synthesized:
                    return LookupResult(
                        LookupStatus.ANSWER, answers=list(synthesized)
                    )
                return LookupResult(
                    LookupStatus.NODATA,
                    authority=self._negative_authority(),
                )

        if qname in self._names:
            return LookupResult(
                LookupStatus.NODATA, authority=self._negative_authority()
            )
        return LookupResult(
            LookupStatus.NXDOMAIN, authority=self._negative_authority()
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def rrsets(self) -> List[RRset]:
        """All stored RRsets (for tests and zone dumps)."""
        return [RRset(records) for records in self._records.values() if records]

    def delegations(self) -> List[Name]:
        return sorted(self._delegations)

    def __repr__(self) -> str:
        return (
            f"<Zone {self.origin} serial={self.serial} "
            f"rrsets={len(self._records)} cuts={len(self._delegations)}>"
        )
