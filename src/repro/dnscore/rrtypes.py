"""Record types, classes, opcodes, and response codes.

Only the types the paper's ecosystem exercises are defined (plus a few
neighbors for completeness); values match IANA assignments so the wire
codec interoperates with real packets in principle.
"""

from __future__ import annotations

import enum


class RRType(enum.IntEnum):
    """DNS resource-record type codes (IANA)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    SRV = 33
    DS = 43
    RRSIG = 46
    DNSKEY = 48
    OPT = 41

    def __str__(self) -> str:
        return self.name


class RRClass(enum.IntEnum):
    """DNS class codes; IN is the only one in active use."""

    IN = 1
    CH = 3
    ANY = 255

    def __str__(self) -> str:
        return self.name


class Opcode(enum.IntEnum):
    """Header opcodes; everything here is a standard QUERY."""

    QUERY = 0
    NOTIFY = 4
    UPDATE = 5


class Rcode(enum.IntEnum):
    """Response codes a client can observe."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5

    def __str__(self) -> str:
        return self.name
