"""Resource records and rdata.

Rdata classes are immutable value objects; :class:`ResourceRecord` binds an
owner name, type, class, and TTL to one rdata, and :class:`RRset` groups
records sharing (name, type, class) — the unit DNS caches operate on.
"""

from __future__ import annotations

import ipaddress
from typing import List, Optional, Sequence, Tuple

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRClass, RRType


class Rdata:
    """Base class for record data. Subclasses are frozen value objects."""

    rtype: RRType

    def key(self) -> tuple:
        """Hash/equality key; subclasses return their field tuple."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rdata):
            return NotImplemented
        return self.rtype == other.rtype and self.key() == other.key()

    def __hash__(self) -> int:
        return hash((self.rtype, self.key()))


class A(Rdata):
    """IPv4 address record."""

    rtype = RRType.A
    __slots__ = ("address",)

    def __init__(self, address: str) -> None:
        self.address = str(ipaddress.IPv4Address(address))

    def key(self) -> tuple:
        return (self.address,)

    def packed(self) -> bytes:
        return ipaddress.IPv4Address(self.address).packed

    def __repr__(self) -> str:
        return f"A({self.address})"


class AAAA(Rdata):
    """IPv6 address record.

    The paper encodes measurement metadata inside AAAA rdata
    (prefix:serial:probeid:ttl); :meth:`fields` unpacks that layout.
    """

    rtype = RRType.AAAA
    __slots__ = ("address",)

    def __init__(self, address: str) -> None:
        self.address = str(ipaddress.IPv6Address(address))

    def key(self) -> tuple:
        return (self.address,)

    def packed(self) -> bytes:
        return ipaddress.IPv6Address(self.address).packed

    @classmethod
    def from_fields(
        cls, prefix: str, serial: int, probe_id: int, ttl: int
    ) -> "AAAA":
        """Build the paper's instrumented answer: the low 64 bits carry
        (serial, probe id, ttl) so the client can classify the answer.

        Layout: serial (12 bits) | probe id (20 bits) | ttl (32 bits) —
        widened from the paper's 8/8/16 split so day-long TTLs and large
        probe populations fit.
        """
        prefix_int = int(ipaddress.IPv6Address(prefix))
        if serial < 0 or serial > 0xFFF:
            raise ValueError(f"serial out of range: {serial}")
        if probe_id < 0 or probe_id > 0xFFFFF:
            raise ValueError(f"probe id out of range: {probe_id}")
        if ttl < 0 or ttl > 0xFFFFFFFF:
            raise ValueError(f"ttl out of range: {ttl}")
        low = (serial << 52) | (probe_id << 32) | ttl
        return cls(str(ipaddress.IPv6Address(prefix_int | low)))

    def fields(self) -> Tuple[int, int, int]:
        """Decode (serial, probe_id, ttl) from the instrumented layout."""
        value = int(ipaddress.IPv6Address(self.address))
        low = value & ((1 << 64) - 1)
        return ((low >> 52) & 0xFFF, (low >> 32) & 0xFFFFF, low & 0xFFFFFFFF)

    def __repr__(self) -> str:
        return f"AAAA({self.address})"


class NS(Rdata):
    """Delegation: the target nameserver's host name."""

    rtype = RRType.NS
    __slots__ = ("target",)

    def __init__(self, target: Name) -> None:
        self.target = target

    def key(self) -> tuple:
        return (self.target,)

    def __repr__(self) -> str:
        return f"NS({self.target})"


class CNAME(Rdata):
    """Alias to another owner name."""

    rtype = RRType.CNAME
    __slots__ = ("target",)

    def __init__(self, target: Name) -> None:
        self.target = target

    def key(self) -> tuple:
        return (self.target,)

    def __repr__(self) -> str:
        return f"CNAME({self.target})"


class SOA(Rdata):
    """Start of authority; ``minimum`` doubles as the negative-cache TTL."""

    rtype = RRType.SOA
    __slots__ = ("mname", "rname", "serial", "refresh", "retry", "expire", "minimum")

    def __init__(
        self,
        mname: Name,
        rname: Name,
        serial: int,
        refresh: int = 7200,
        retry: int = 3600,
        expire: int = 1209600,
        minimum: int = 3600,
    ) -> None:
        self.mname = mname
        self.rname = rname
        self.serial = serial
        self.refresh = refresh
        self.retry = retry
        self.expire = expire
        self.minimum = minimum

    def key(self) -> tuple:
        return (
            self.mname,
            self.rname,
            self.serial,
            self.refresh,
            self.retry,
            self.expire,
            self.minimum,
        )

    def __repr__(self) -> str:
        return f"SOA(serial={self.serial}, minimum={self.minimum})"


class TXT(Rdata):
    """Free-form text record."""

    rtype = RRType.TXT
    __slots__ = ("strings",)

    def __init__(self, strings: Sequence[str]) -> None:
        strings = tuple(strings)
        for chunk in strings:
            if len(chunk.encode("utf-8")) > 255:
                raise ValueError("TXT chunk exceeds 255 octets")
        self.strings = strings

    def key(self) -> tuple:
        return self.strings

    def __repr__(self) -> str:
        return f"TXT({self.strings!r})"


class DS(Rdata):
    """Delegation signer digest (the record the root DITL analysis counts)."""

    rtype = RRType.DS
    __slots__ = ("key_tag", "algorithm", "digest_type", "digest")

    def __init__(
        self, key_tag: int, algorithm: int, digest_type: int, digest: bytes
    ) -> None:
        self.key_tag = key_tag
        self.algorithm = algorithm
        self.digest_type = digest_type
        self.digest = bytes(digest)

    def key(self) -> tuple:
        return (self.key_tag, self.algorithm, self.digest_type, self.digest)

    def __repr__(self) -> str:
        return f"DS(tag={self.key_tag}, alg={self.algorithm})"


class ResourceRecord:
    """One (name, type, class, TTL, rdata) row."""

    __slots__ = ("name", "rtype", "rclass", "ttl", "rdata")

    def __init__(
        self,
        name: Name,
        ttl: int,
        rdata: Rdata,
        rclass: RRClass = RRClass.IN,
    ) -> None:
        if ttl < 0 or ttl > 0x7FFFFFFF:
            raise ValueError(f"TTL out of range: {ttl}")
        self.name = name
        self.rtype = rdata.rtype
        self.rclass = rclass
        self.ttl = ttl
        self.rdata = rdata

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        """Copy with a different TTL (cache decrement / TTL caps)."""
        return ResourceRecord(self.name, ttl, self.rdata, self.rclass)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceRecord):
            return NotImplemented
        return (
            self.name == other.name
            and self.rclass == other.rclass
            and self.ttl == other.ttl
            and self.rdata == other.rdata
        )

    def __hash__(self) -> int:
        return hash((self.name, self.rclass, self.ttl, self.rdata))

    def __repr__(self) -> str:
        return f"RR({self.name} {self.ttl} {self.rtype} {self.rdata!r})"


class RRset:
    """Records sharing (name, type, class): the caching unit.

    All members must share the owner/type/class; the TTL of the set is the
    minimum member TTL (RFC 2181 §5.2 says they should be equal; we
    normalize defensively).
    """

    __slots__ = ("name", "rtype", "rclass", "records")

    def __init__(self, records: Sequence[ResourceRecord]) -> None:
        if not records:
            raise ValueError("an RRset needs at least one record")
        first = records[0]
        for record in records[1:]:
            if (
                record.name != first.name
                or record.rtype != first.rtype
                or record.rclass != first.rclass
            ):
                raise ValueError("mixed (name, type, class) in RRset")
        self.name = first.name
        self.rtype = first.rtype
        self.rclass = first.rclass
        self.records: List[ResourceRecord] = list(records)

    @property
    def ttl(self) -> int:
        return min(record.ttl for record in self.records)

    def rdatas(self) -> List[Rdata]:
        return [record.rdata for record in self.records]

    def with_ttl(self, ttl: int) -> "RRset":
        return RRset([record.with_ttl(ttl) for record in self.records])

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __repr__(self) -> str:
        return f"RRset({self.name} {self.rtype} x{len(self.records)} ttl={self.ttl})"


def first_address(
    records: Sequence[ResourceRecord],
) -> Optional[str]:
    """Extract the first A/AAAA address from a record list, if any."""
    for record in records:
        if isinstance(record.rdata, (A, AAAA)):
            return record.rdata.address
    return None
