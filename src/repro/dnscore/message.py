"""DNS messages: header, question, and the three record sections."""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

from repro.dnscore.name import Name
from repro.dnscore.records import ResourceRecord, RRset
from repro.dnscore.rrtypes import Opcode, Rcode, RRClass, RRType

_message_ids = itertools.count(1)


def next_message_id() -> int:
    """Monotonic 16-bit message id; uniqueness within a flight is what
    matters for the simulation, not unpredictability."""
    return next(_message_ids) & 0xFFFF


class Question:
    """The (qname, qtype, qclass) triple of a query."""

    __slots__ = ("qname", "qtype", "qclass")

    def __init__(
        self, qname: Name, qtype: RRType, qclass: RRClass = RRClass.IN
    ) -> None:
        self.qname = qname
        self.qtype = qtype
        self.qclass = qclass

    def key(self) -> tuple:
        return (self.qname, self.qtype, self.qclass)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Question):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return f"Question({self.qname} {self.qtype})"


class Message:
    """A DNS message with standard header flags and sections.

    Attributes mirror the RFC 1035 header: ``qr`` (response), ``aa``
    (authoritative answer), ``tc`` (truncated), ``rd`` (recursion
    desired), ``ra`` (recursion available), plus opcode and rcode.
    """

    __slots__ = (
        "msg_id",
        "qr",
        "opcode",
        "aa",
        "tc",
        "rd",
        "ra",
        "rcode",
        "question",
        "answers",
        "authority",
        "additional",
        "edns_payload",
        "trace_id",
    )

    def __init__(
        self,
        msg_id: int,
        question: Optional[Question],
        qr: bool = False,
        opcode: Opcode = Opcode.QUERY,
        aa: bool = False,
        tc: bool = False,
        rd: bool = False,
        ra: bool = False,
        rcode: Rcode = Rcode.NOERROR,
        answers: Optional[Sequence[ResourceRecord]] = None,
        authority: Optional[Sequence[ResourceRecord]] = None,
        additional: Optional[Sequence[ResourceRecord]] = None,
        edns_payload: Optional[int] = None,
    ) -> None:
        self.msg_id = msg_id & 0xFFFF
        self.qr = qr
        self.opcode = opcode
        self.aa = aa
        self.tc = tc
        self.rd = rd
        self.ra = ra
        self.rcode = rcode
        self.question = question
        self.answers: List[ResourceRecord] = list(answers or [])
        self.authority: List[ResourceRecord] = list(authority or [])
        self.additional: List[ResourceRecord] = list(additional or [])
        # EDNS0 (RFC 6891): advertised UDP payload size; None = no OPT
        # pseudo-record (plain DNS, 512-byte limit).
        self.edns_payload = edns_payload
        # Observability: id of the stub query lifecycle this message
        # belongs to (None in untraced runs). Not part of the wire format;
        # the network re-attaches it across serialization.
        self.trace_id: Optional[int] = None

    # ------------------------------------------------------------------
    # Interpretation helpers
    # ------------------------------------------------------------------
    @property
    def is_response(self) -> bool:
        return self.qr

    def is_referral(self) -> bool:
        """A referral carries no answers, is not authoritative, and has
        NS records in the authority section (the paper's Appendix A)."""
        return (
            self.qr
            and not self.aa
            and not self.answers
            and self.rcode == Rcode.NOERROR
            and any(record.rtype == RRType.NS for record in self.authority)
        )

    def answer_rrset(self) -> Optional[RRset]:
        """The answer records matching the question, as an RRset."""
        if not self.question or not self.answers:
            return None
        matching = [
            record
            for record in self.answers
            if record.name == self.question.qname
            and record.rtype == self.question.qtype
        ]
        if not matching:
            return None
        return RRset(matching)

    def soa_minimum_ttl(self) -> Optional[int]:
        """Negative-cache TTL from the authority SOA, per RFC 2308."""
        for record in self.authority:
            if record.rtype == RRType.SOA:
                soa = record.rdata
                return min(record.ttl, soa.minimum)
        return None

    def __repr__(self) -> str:
        kind = "response" if self.qr else "query"
        return (
            f"<Message {kind} id={self.msg_id} {self.question!r} "
            f"rcode={self.rcode} an={len(self.answers)} "
            f"au={len(self.authority)} ad={len(self.additional)}>"
        )


def make_query(
    qname: Name,
    qtype: RRType,
    rd: bool = True,
    msg_id: Optional[int] = None,
    edns_payload: Optional[int] = None,
) -> Message:
    """Build a standard query message (optionally EDNS0-enabled)."""
    return Message(
        msg_id if msg_id is not None else next_message_id(),
        Question(qname, qtype),
        rd=rd,
        edns_payload=edns_payload,
    )


def make_response(
    query: Message,
    rcode: Rcode = Rcode.NOERROR,
    aa: bool = False,
    ra: bool = False,
    answers: Optional[Sequence[ResourceRecord]] = None,
    authority: Optional[Sequence[ResourceRecord]] = None,
    additional: Optional[Sequence[ResourceRecord]] = None,
    edns_payload: Optional[int] = None,
) -> Message:
    """Build a response echoing the query's id, question, and RD bit."""
    return Message(
        query.msg_id,
        query.question,
        qr=True,
        aa=aa,
        rd=query.rd,
        ra=ra,
        rcode=rcode,
        answers=answers,
        authority=authority,
        additional=additional,
        edns_payload=edns_payload,
    )
