"""RFC 1035 wire format: full message encode/decode with name compression.

The simulator can run with or without serialization at the transport
boundary; this codec exists so messages crossing the emulated network are
real DNS packets, and it round-trips every message shape the library
produces. Compression pointers are emitted for owner names and for names
embedded in NS/CNAME/SOA rdata (the types RFC 3597 allows to compress).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.dnscore.message import Message, Question
from repro.dnscore.name import Name
from repro.dnscore.records import (
    AAAA,
    CNAME,
    DS,
    NS,
    SOA,
    TXT,
    A,
    Rdata,
    ResourceRecord,
)
from repro.dnscore.rrtypes import Opcode, Rcode, RRClass, RRType

_HEADER = struct.Struct("!HHHHHH")
_POINTER_MASK = 0xC000
_MAX_POINTER = 0x3FFF


class WireError(ValueError):
    """Raised on malformed wire data."""


# ---------------------------------------------------------------------------
# Names
# ---------------------------------------------------------------------------
def _encode_name(name: Name, out: bytearray, offsets: Dict[Tuple[str, ...], int]) -> None:
    """Append ``name`` with compression against previously written names."""
    labels = name.labels
    for index in range(len(labels)):
        suffix = tuple(label.lower() for label in labels[index:])
        pointer = offsets.get(suffix)
        if pointer is not None:
            out += struct.pack("!H", _POINTER_MASK | pointer)
            return
        if len(out) <= _MAX_POINTER:
            offsets[suffix] = len(out)
        label = labels[index].encode("ascii")
        out.append(len(label))
        out += label
    out.append(0)


def _decode_name(data: bytes, offset: int) -> Tuple[Name, int]:
    """Decode a (possibly compressed) name starting at ``offset``.

    Returns the name and the offset just past its in-place encoding.
    """
    labels: List[str] = []
    jumps = 0
    cursor = offset
    end = -1  # set at first pointer jump
    while True:
        if cursor >= len(data):
            raise WireError("name runs past end of packet")
        length = data[cursor]
        if (length & 0xC0) == 0xC0:
            if cursor + 1 >= len(data):
                raise WireError("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | data[cursor + 1]
            if pointer >= cursor:
                raise WireError("forward compression pointer")
            if end < 0:
                end = cursor + 2
            jumps += 1
            if jumps > 64:
                raise WireError("compression pointer loop")
            cursor = pointer
            continue
        if length & 0xC0:
            raise WireError(f"reserved label type 0x{length:02x}")
        cursor += 1
        if length == 0:
            break
        if cursor + length > len(data):
            raise WireError("label runs past end of packet")
        labels.append(data[cursor:cursor + length].decode("ascii"))
        cursor += length
        if len(labels) > 128:
            raise WireError("too many labels")
    if end < 0:
        end = cursor
    return Name(labels), end


# ---------------------------------------------------------------------------
# Rdata
# ---------------------------------------------------------------------------
def _encode_rdata(
    rdata: Rdata, out: bytearray, offsets: Dict[Tuple[str, ...], int]
) -> None:
    """Append rdata preceded by its 16-bit length."""
    length_at = len(out)
    out += b"\x00\x00"  # placeholder
    if isinstance(rdata, A):
        out += rdata.packed()
    elif isinstance(rdata, AAAA):
        out += rdata.packed()
    elif isinstance(rdata, (NS, CNAME)):
        _encode_name(rdata.target, out, offsets)
    elif isinstance(rdata, SOA):
        _encode_name(rdata.mname, out, offsets)
        _encode_name(rdata.rname, out, offsets)
        out += struct.pack(
            "!IIIII",
            rdata.serial,
            rdata.refresh,
            rdata.retry,
            rdata.expire,
            rdata.minimum,
        )
    elif isinstance(rdata, TXT):
        for chunk in rdata.strings:
            raw = chunk.encode("utf-8")
            out.append(len(raw))
            out += raw
    elif isinstance(rdata, DS):
        out += struct.pack("!HBB", rdata.key_tag, rdata.algorithm, rdata.digest_type)
        out += rdata.digest
    else:
        raise WireError(f"cannot encode rdata type {rdata.rtype}")
    rdlength = len(out) - length_at - 2
    struct.pack_into("!H", out, length_at, rdlength)


def _decode_rdata(
    rtype: RRType, data: bytes, offset: int, rdlength: int
) -> Rdata:
    end = offset + rdlength
    if end > len(data):
        raise WireError("rdata runs past end of packet")
    if rtype == RRType.A:
        if rdlength != 4:
            raise WireError(f"A rdlength {rdlength} != 4")
        return A(".".join(str(byte) for byte in data[offset:end]))
    if rtype == RRType.AAAA:
        if rdlength != 16:
            raise WireError(f"AAAA rdlength {rdlength} != 16")
        groups = struct.unpack("!8H", data[offset:end])
        return AAAA(":".join(f"{group:x}" for group in groups))
    if rtype in (RRType.NS, RRType.CNAME):
        target, consumed = _decode_name(data, offset)
        if consumed > end:
            raise WireError("name rdata overruns rdlength")
        return NS(target) if rtype == RRType.NS else CNAME(target)
    if rtype == RRType.SOA:
        mname, cursor = _decode_name(data, offset)
        rname, cursor = _decode_name(data, cursor)
        if cursor + 20 > end:
            raise WireError("SOA rdata truncated")
        serial, refresh, retry, expire, minimum = struct.unpack(
            "!IIIII", data[cursor:cursor + 20]
        )
        return SOA(mname, rname, serial, refresh, retry, expire, minimum)
    if rtype == RRType.TXT:
        strings: List[str] = []
        cursor = offset
        while cursor < end:
            length = data[cursor]
            cursor += 1
            if cursor + length > end:
                raise WireError("TXT chunk overruns rdata")
            strings.append(data[cursor:cursor + length].decode("utf-8"))
            cursor += length
        return TXT(strings)
    if rtype == RRType.DS:
        if rdlength < 4:
            raise WireError("DS rdata truncated")
        key_tag, algorithm, digest_type = struct.unpack(
            "!HBB", data[offset:offset + 4]
        )
        return DS(key_tag, algorithm, digest_type, data[offset + 4:end])
    raise WireError(f"cannot decode rdata type {rtype}")


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------
def _flags_word(message: Message) -> int:
    word = 0
    if message.qr:
        word |= 0x8000
    word |= (int(message.opcode) & 0xF) << 11
    if message.aa:
        word |= 0x0400
    if message.tc:
        word |= 0x0200
    if message.rd:
        word |= 0x0100
    if message.ra:
        word |= 0x0080
    word |= int(message.rcode) & 0xF
    return word


def upper_bound_size(message: Message) -> int:
    """A cheap upper bound on the encoded size (compression only shrinks).

    Servers use this to skip full encoding when a response obviously
    fits inside the UDP payload limit.
    """

    def name_size(name: Name) -> int:
        return sum(len(label) + 1 for label in name.labels) + 1

    def rdata_size(rdata) -> int:
        if isinstance(rdata, A):
            return 4
        if isinstance(rdata, AAAA):
            return 16
        if isinstance(rdata, (NS, CNAME)):
            return name_size(rdata.target)
        if isinstance(rdata, SOA):
            return name_size(rdata.mname) + name_size(rdata.rname) + 20
        if isinstance(rdata, TXT):
            return sum(len(chunk.encode("utf-8")) + 1 for chunk in rdata.strings)
        if isinstance(rdata, DS):
            return 4 + len(rdata.digest)
        return 512  # unknown: assume large

    total = _HEADER.size
    if message.question:
        total += name_size(message.question.qname) + 4
    if message.edns_payload is not None:
        total += 11  # OPT pseudo-record
    for section in (message.answers, message.authority, message.additional):
        for record in section:
            total += name_size(record.name) + 10 + rdata_size(record.rdata)
    return total


def to_wire(message: Message) -> bytes:
    """Serialize a message to RFC 1035 wire format (incl. EDNS0 OPT)."""
    out = bytearray()
    qdcount = 1 if message.question else 0
    arcount = len(message.additional)
    if message.edns_payload is not None:
        arcount += 1
    out += _HEADER.pack(
        message.msg_id,
        _flags_word(message),
        qdcount,
        len(message.answers),
        len(message.authority),
        arcount,
    )
    offsets: Dict[Tuple[str, ...], int] = {}
    if message.question:
        _encode_name(message.question.qname, out, offsets)
        out += struct.pack(
            "!HH", int(message.question.qtype), int(message.question.qclass)
        )
    for section in (message.answers, message.authority, message.additional):
        for record in section:
            _encode_name(record.name, out, offsets)
            out += struct.pack(
                "!HHI", int(record.rtype), int(record.rclass), record.ttl
            )
            _encode_rdata(record.rdata, out, offsets)
    if message.edns_payload is not None:
        # RFC 6891 OPT pseudo-record: root owner, CLASS = payload size,
        # TTL = extended flags (all zero here), empty rdata.
        out.append(0)  # root name
        out += struct.pack(
            "!HHIH", int(RRType.OPT), message.edns_payload & 0xFFFF, 0, 0
        )
    return bytes(out)


def from_wire(data: bytes) -> Message:
    """Parse an RFC 1035 packet into a :class:`Message`."""
    if len(data) < _HEADER.size:
        raise WireError("packet shorter than header")
    (msg_id, flags, qdcount, ancount, nscount, arcount) = _HEADER.unpack_from(data)
    if qdcount > 1:
        raise WireError(f"unsupported qdcount {qdcount}")
    opcode_value = (flags >> 11) & 0xF
    try:
        opcode = Opcode(opcode_value)
    except ValueError as exc:
        raise WireError(f"unknown opcode {opcode_value}") from exc
    rcode_value = flags & 0xF
    try:
        rcode = Rcode(rcode_value)
    except ValueError as exc:
        raise WireError(f"unknown rcode {rcode_value}") from exc

    cursor = _HEADER.size
    question = None
    if qdcount:
        qname, cursor = _decode_name(data, cursor)
        if cursor + 4 > len(data):
            raise WireError("question truncated")
        qtype_value, qclass_value = struct.unpack_from("!HH", data, cursor)
        cursor += 4
        question = Question(qname, RRType(qtype_value), RRClass(qclass_value))

    edns_payload = None
    sections: List[List[ResourceRecord]] = []
    for count in (ancount, nscount, arcount):
        records: List[ResourceRecord] = []
        for _ in range(count):
            name, cursor = _decode_name(data, cursor)
            if cursor + 10 > len(data):
                raise WireError("record header truncated")
            rtype_value, rclass_value, ttl, rdlength = struct.unpack_from(
                "!HHIH", data, cursor
            )
            cursor += 10
            if rtype_value == int(RRType.OPT):
                # EDNS0 pseudo-record: class carries the payload size.
                edns_payload = rclass_value
                cursor += rdlength
                continue
            rdata = _decode_rdata(RRType(rtype_value), data, cursor, rdlength)
            cursor += rdlength
            records.append(
                ResourceRecord(name, ttl, rdata, RRClass(rclass_value))
            )
        sections.append(records)

    return Message(
        msg_id,
        question,
        qr=bool(flags & 0x8000),
        opcode=opcode,
        aa=bool(flags & 0x0400),
        tc=bool(flags & 0x0200),
        rd=bool(flags & 0x0100),
        ra=bool(flags & 0x0080),
        rcode=rcode,
        answers=sections[0],
        authority=sections[1],
        additional=sections[2],
        edns_payload=edns_payload,
    )
