"""DNS protocol implementation, from scratch.

Everything the simulation needs to speak DNS lives here: domain names
(:mod:`~repro.dnscore.name`), record types and response codes
(:mod:`~repro.dnscore.rrtypes`), resource records and rdata
(:mod:`~repro.dnscore.records`), messages (:mod:`~repro.dnscore.message`),
an RFC 1035 wire codec with name compression (:mod:`~repro.dnscore.wire`),
and authoritative zone data with answer/referral/NXDOMAIN lookup semantics
(:mod:`~repro.dnscore.zone`).
"""

from repro.dnscore.message import Message, Question, make_query, make_response
from repro.dnscore.name import Name, NameError_, root_name
from repro.dnscore.records import (
    AAAA,
    CNAME,
    DS,
    NS,
    SOA,
    TXT,
    A,
    Rdata,
    ResourceRecord,
    RRset,
)
from repro.dnscore.rrtypes import Opcode, Rcode, RRClass, RRType
from repro.dnscore.wire import WireError, from_wire, to_wire
from repro.dnscore.zone import LookupResult, LookupStatus, Zone

__all__ = [
    "A",
    "AAAA",
    "CNAME",
    "DS",
    "LookupResult",
    "LookupStatus",
    "Message",
    "NS",
    "Name",
    "NameError_",
    "Opcode",
    "Question",
    "RRClass",
    "RRType",
    "RRset",
    "Rcode",
    "Rdata",
    "ResourceRecord",
    "SOA",
    "TXT",
    "WireError",
    "Zone",
    "from_wire",
    "make_query",
    "make_response",
    "root_name",
    "to_wire",
]
