"""Domain names per RFC 1035: label sequences with case-insensitive match.

Names are immutable and hashable; all comparisons and hashing use the
lowercased form, while the original spelling is preserved for display.
"""

from __future__ import annotations

from typing import Iterable, Tuple

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255


class NameError_(ValueError):
    """Raised for malformed domain names (trailing underscore avoids
    shadowing the builtin ``NameError``)."""


class Name:
    """An absolute domain name as a tuple of labels, root = empty tuple.

    ``Name.from_text("www.Example.NL")`` and
    ``Name.from_text("www.example.nl.")`` compare equal; ``str()`` always
    renders the absolute form with a trailing dot.
    """

    __slots__ = ("labels", "_key", "_hash")

    def __init__(self, labels: Iterable[str]) -> None:
        labels = tuple(labels)
        for label in labels:
            if not label:
                raise NameError_("empty label inside name")
            if len(label.encode("ascii", "strict")) > MAX_LABEL_LENGTH:
                raise NameError_(f"label too long: {label!r}")
        wire_length = sum(len(label) + 1 for label in labels) + 1
        if wire_length > MAX_NAME_LENGTH:
            raise NameError_(f"name too long ({wire_length} octets)")
        self.labels: Tuple[str, ...] = labels
        self._key = tuple(label.lower() for label in labels)
        self._hash = hash(self._key)

    # ------------------------------------------------------------------
    # Construction / rendering
    # ------------------------------------------------------------------
    @classmethod
    def from_text(cls, text: str) -> "Name":
        """Parse a dotted name; both relative-looking and absolute forms
        are treated as absolute (this library has no search lists)."""
        if text in (".", ""):
            return cls(())
        stripped = text[:-1] if text.endswith(".") else text
        if not stripped:
            raise NameError_(f"malformed name {text!r}")
        labels = stripped.split(".")
        if any(label == "" for label in labels):
            raise NameError_(f"empty label in {text!r}")
        return cls(labels)

    def to_text(self) -> str:
        """Absolute textual form, trailing dot included."""
        if not self.labels:
            return "."
        return ".".join(self.labels) + "."

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:
        return f"Name({self.to_text()!r})"

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Name") -> bool:
        # Canonical DNS ordering compares from the rightmost label.
        return tuple(reversed(self._key)) < tuple(reversed(other._key))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def is_root(self) -> bool:
        return not self.labels

    def __len__(self) -> int:
        """Number of labels (the root name has zero)."""
        return len(self.labels)

    def parent(self) -> "Name":
        """The name with the leftmost label removed."""
        if self.is_root:
            raise NameError_("the root name has no parent")
        return Name(self.labels[1:])

    def child(self, label: str) -> "Name":
        """Prepend ``label``, yielding a direct subdomain."""
        return Name((label,) + self.labels)

    def is_subdomain_of(self, other: "Name") -> bool:
        """True if ``self`` is ``other`` or lies below it."""
        if len(other._key) > len(self._key):
            return False
        if not other._key:
            return True
        return self._key[-len(other._key):] == other._key

    def relativize(self, origin: "Name") -> Tuple[str, ...]:
        """Labels of ``self`` below ``origin`` (raises if not a subdomain)."""
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not under {origin}")
        count = len(self.labels) - len(origin.labels)
        return self.labels[:count]

    def ancestors(self) -> Iterable["Name"]:
        """Yield self, parent, ..., root — the cache walk order."""
        name = self
        while True:
            yield name
            if name.is_root:
                return
            name = name.parent()


def root_name() -> Name:
    """The DNS root name (".")."""
    return Name(())
