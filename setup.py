"""Setup shim for environments whose pip/setuptools lack PEP 660 support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'When the Dike Breaks: Dissecting DNS Defenses "
        "During DDoS' (IMC 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
