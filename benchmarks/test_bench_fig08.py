"""Figure 8 — answers over time during partial (50/75/90%) attacks."""

from conftest import emit

from repro.analysis.figures import render_timeseries_table

# Paper failure levels during the attack window.
PAPER_FAILURES = {"E": 0.085, "F": 0.190, "H": 0.403, "I": 0.630}


def test_bench_fig08(benchmark, runs, output_dir):
    results = {key: runs.ddos(key) for key in ("E", "F", "H", "I")}

    def regenerate():
        sections = []
        for label, key in zip("abcd", results):
            result = results[key]
            sections.append(
                render_timeseries_table(
                    f"Figure 8{label}: Experiment {key} "
                    f"({result.spec.loss_fraction:.0%} loss, TTL {result.spec.ttl}s)",
                    result.outcomes_by_round(),
                    ["ok", "servfail", "no_answer"],
                    attack_rounds=list(range(6, 12)),
                )
            )
        return "\n\n".join(sections)

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    comparison = "\n".join(
        f"  {key}: measured {results[key].failure_fraction_during_attack():.3f}"
        f" vs paper {paper:.3f}"
        for key, paper in PAPER_FAILURES.items()
    )
    emit(output_dir, "fig08", text + "\n\nattack-window failures:\n" + comparison)

    for key, paper in PAPER_FAILURES.items():
        measured = results[key].failure_fraction_during_attack()
        assert abs(measured - paper) < 0.15, f"{key}: {measured} vs {paper}"
    # Failure level is flat across the hour even when the attack outlives
    # the cache TTL (caching x retries synergy, Experiment H).
    series_h = results["H"].outcomes_by_round()
    first_half = series_h[7]["ok"] / sum(series_h[7].values())
    second_half = series_h[10]["ok"] / sum(series_h[10].values())
    assert abs(first_half - second_half) < 0.25
