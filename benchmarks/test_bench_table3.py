"""Table 3 — attribution of cache misses to public resolvers."""

from conftest import emit

from repro.analysis.tables import render_matrix

# Paper Table 3, TTL 1800 column, as fractions of AC answers:
# Public R1 12000/24645 = 0.487; Google R1 9693/24645 = 0.393;
# within non-public, Google Rn 1196/12645 = 0.095.
PAPER = {
    "public_r1_share": 0.487,
    "google_r1_share": 0.393,
    "google_rn_within_nonpublic": 0.095,
}


def test_bench_table3(benchmark, runs, output_dir):
    keys = ("1800", "3600", "86400", "3600-10m")
    results = {key: runs.baseline(key) for key in keys}

    def regenerate():
        columns = list(keys)
        tables = {key: results[key].table3 for key in keys}
        labels = [label for label, _ in tables["1800"].as_rows()]
        rows = [
            (label, [dict(tables[key].as_rows())[label] for key in columns])
            for label in labels
        ]
        return render_matrix(
            "Table 3: AC answers by resolver kind (no public misses at TTL 60)",
            columns,
            rows,
        )

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)

    table3 = results["1800"].table3
    measured = {
        "public_r1_share": table3.public_r1 / table3.ac_total,
        "google_r1_share": table3.google_r1 / table3.ac_total,
        "google_rn_within_nonpublic": (
            table3.google_rn / table3.non_public_r1 if table3.non_public_r1 else 0.0
        ),
    }
    comparison = "\n".join(
        f"  {name}: measured {measured[name]:.3f} vs paper {PAPER[name]:.3f}"
        for name in PAPER
    )
    emit(output_dir, "table3", text + "\n\nShares (TTL 1800):\n" + comparison)

    # About half of misses via public R1s, most of those Google-like.
    assert 0.35 < measured["public_r1_share"] < 0.70
    assert measured["google_r1_share"] > 0.5 * measured["public_r1_share"]
    assert measured["google_rn_within_nonpublic"] < 0.35
