"""Figure 12 — unique exit recursives reaching the authoritatives.

Paper: during the attack, lower-layer recursives start forwarding to
additional exits, so the number of unique Rn addresses at the
authoritatives grows; with TTL 1800 (F, H) the pre-attack series
oscillates with cache expiries, with TTL 60 (I) it is flat.
"""

from conftest import emit

from repro.analysis.figures import render_series


def test_bench_fig12(benchmark, runs, output_dir):
    results = {key: runs.ddos(key) for key in ("F", "H", "I")}

    def regenerate():
        merged = {}
        for key, result in results.items():
            for round_index, count in result.unique_rn().items():
                merged.setdefault(round_index, {})[key] = count
        rows = [
            (
                int(round_index * 10),
                bucket.get("F", 0),
                bucket.get("H", 0),
                bucket.get("I", 0),
            )
            for round_index, bucket in sorted(merged.items())
        ]
        return render_series(
            "Figure 12: unique Rn addresses per round (attack minutes 60-120)",
            rows,
            ["minute", "Exp F", "Exp H", "Exp I"],
        )

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    emit(output_dir, "fig12", text)

    for key, result in results.items():
        series = result.unique_rn()
        # Compare round means, excluding the warm-up round 0 (every
        # recursive appears there). With TTL 1800 (F, H) the pre-attack
        # series oscillates with cache expiry and the attack pushes the
        # mean above it; with TTL 60 (I) every recursive queries every
        # round already, so at this population scale the series is
        # saturated — growth shows per probe instead (Figure 11).
        pre_attack = sum(series[r] for r in range(1, 6)) / 5
        mid_attack = sum(series[r] for r in range(6, 12)) / 6
        if key in ("F", "H"):
            assert mid_attack > pre_attack, f"{key}: no Rn growth under attack"
        else:
            # Saturated within one unique-Rn of the ceiling.
            assert mid_attack >= pre_attack - 1.0
