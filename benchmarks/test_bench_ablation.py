"""Ablations of the paper's defense mechanisms (DESIGN.md §5).

The paper attributes DDoS resilience to caching and retries acting
together (§5.4: "caching and retries are synergistic"). These benches
strip each mechanism from the Experiment-H scenario (90% loss, 30-minute
TTL) and measure the marginal damage, plus the cache-fragmentation
dependence on public-pool fan-out.
"""

from conftest import SEED, emit

from repro.analysis.tables import render_kv_table, render_matrix
from repro.clients.population import PopulationConfig
from repro.clients.publicdns import default_public_services
from repro.core.experiments import BASELINE_EXPERIMENTS, DDOS_EXPERIMENTS
from repro.core.experiments import run_baseline, run_ddos

ABLATION_PROBES = 250


def run_h_variant(**population_kwargs):
    population = PopulationConfig(
        probe_count=ABLATION_PROBES, **population_kwargs
    )
    return run_ddos(
        DDOS_EXPERIMENTS["H"], probe_count=ABLATION_PROBES,
        seed=SEED, population=population,
    )


def test_bench_ablation_defenses(benchmark, output_dir):
    variants = {
        "full (caching + retries)": run_h_variant(),
        "no retries": run_h_variant(disable_retries=True),
        "no caching": run_h_variant(disable_caching=True),
        "neither": run_h_variant(disable_retries=True, disable_caching=True),
        "no serve-stale": run_h_variant(disable_serve_stale=True),
    }

    def regenerate():
        rows = [
            (
                name,
                [
                    f"{result.failure_fraction_before_attack():.3f}",
                    f"{result.failure_fraction_during_attack():.3f}",
                ],
            )
            for name, result in variants.items()
        ]
        return render_matrix(
            "Ablation: Experiment H (90% loss) with defenses removed",
            ["fail-pre", "fail-ddos"],
            rows,
        )

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    emit(output_dir, "ablation_defenses", text)

    full = variants["full (caching + retries)"].failure_fraction_during_attack()
    no_retries = variants["no retries"].failure_fraction_during_attack()
    no_caching = variants["no caching"].failure_fraction_during_attack()
    neither = variants["neither"].failure_fraction_during_attack()

    # Each mechanism contributes; together they dominate.
    assert no_retries > full + 0.05, "retries contribute materially"
    assert no_caching > full + 0.03, "caching contributes materially"
    assert neither > max(no_retries, no_caching) - 0.02
    # With neither defense, ~90% loss means ~90% failures.
    assert neither > 0.7


def test_bench_ablation_fragmentation(benchmark, output_dir):
    def run_with_fanout(backend_count):
        services = default_public_services()
        for service in services:
            if service.google_like:
                service.backend_count = backend_count
        population = PopulationConfig(
            probe_count=300, public_services=services
        )
        return run_baseline(
            BASELINE_EXPERIMENTS["1800"],
            probe_count=300,
            seed=SEED,
            population=population,
        )

    results = {count: run_with_fanout(count) for count in (1, 4, 12)}

    def regenerate():
        rows = [
            (f"{count} backends", f"{results[count].miss_rate:.3f}")
            for count in results
        ]
        return render_kv_table(
            "Ablation: cache-miss rate vs Google-pool fan-out (TTL 1800)",
            rows,
        )

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    emit(output_dir, "ablation_fragmentation", text)

    # More independent backend caches -> more fragmentation -> more misses.
    assert results[1].miss_rate < results[4].miss_rate < results[12].miss_rate


def test_bench_ablation_ttl(benchmark, output_dir):
    from repro.core.experiments import DDoSSpec

    def run_with_ttl(ttl):
        spec = DDoSSpec(
            key=f"ttl-{ttl}", ttl=ttl, ddos_start_min=60, ddos_duration_min=60,
            queries_before=6, total_duration_min=130, probe_interval_min=10,
            loss_fraction=0.90, servers="both",
        )
        return run_ddos(spec, probe_count=ABLATION_PROBES, seed=SEED)

    results = {ttl: run_with_ttl(ttl) for ttl in (60, 1800, 3600)}

    def regenerate():
        rows = [
            (f"TTL {ttl}s", f"{results[ttl].failure_fraction_during_attack():.3f}")
            for ttl in results
        ]
        return render_kv_table(
            "Ablation: failure rate vs zone TTL at 90% loss (paper §8)",
            rows,
        )

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    emit(output_dir, "ablation_ttl", text)

    # Longer TTLs buy resilience (the paper's CDN recommendation).
    assert (
        results[3600].failure_fraction_during_attack()
        < results[60].failure_fraction_during_attack() - 0.1
    )
