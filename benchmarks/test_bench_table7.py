"""Table 7 + Figure 17 — the single-probe amplification drill-down."""

from conftest import SEED, emit

from repro.analysis.tables import render_matrix
from repro.core.experiments.probe_case import run_probe_case

# Paper Table 7: 3 client queries per interval; 3-6 authoritative
# queries normally; 11-29 during the 90% attack; 2 of 3 answered.


def test_bench_table7(benchmark, output_dir):
    result = run_probe_case(seed=SEED)

    def regenerate():
        rows = [
            (
                f"T{row.interval}{'*' if row.during_attack else ' '}",
                [
                    row.client_queries,
                    row.client_answers,
                    row.client_r1_count,
                    row.auth_queries,
                    row.auth_answers,
                    row.at_count,
                    row.rn_count,
                    row.rn_at_pairs,
                    f"{row.top2_queries[0]};{row.top2_queries[1]}",
                ],
            )
            for row in result.rows
        ]
        topology = (
            "Figure 17 topology: probe -> "
            f"{len(result.r1_addresses)} R1 -> {len(result.rn_addresses)} Rn -> "
            f"{len(result.at_addresses)} AT"
        )
        table = render_matrix(
            "Table 7: client vs authoritative view (* = attack interval)",
            ["c-q", "c-ans", "c-R1", "a-q", "a-ans", "ATs", "Rn", "Rn-AT", "top2"],
            rows,
        )
        return topology + "\n\n" + table

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    summary = result.amplification_summary()
    emit(
        output_dir,
        "table7",
        text
        + "\n\nqueries per client query: "
        + f"normal {summary['normal_queries_per_client_query']:.1f}, "
        + f"attack {summary['attack_queries_per_client_query']:.1f} "
        + "(paper: ~1-2 normal, ~4-10 attack)",
    )

    normal = [row for row in result.rows if not row.during_attack]
    attack = [row for row in result.rows if row.during_attack]
    assert all(row.client_queries == 3 for row in result.rows)
    assert all(3 <= row.auth_queries <= 8 for row in normal)
    assert max(row.auth_queries for row in attack) > 10
    assert (
        summary["attack_queries_per_client_query"]
        > summary["normal_queries_per_client_query"] * 3
    )
