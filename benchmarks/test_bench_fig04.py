"""Figure 4 — ECDF of per-recursive median inter-arrival at .nl servers."""

from conftest import SEED, emit

from repro.analysis.ecdf import Ecdf
from repro.workloads.nl_trace import (
    NlTraceConfig,
    close_query_fraction,
    generate_nl_trace,
    interarrival_medians,
)

# Paper §4.1: ~28% of queries arrive <10 s apart (excluded); the median
# inter-arrival ECDF jumps at 3600 s (the TTL); ~22% of recursives ask
# more often than the TTL; ~63% honor the full TTL.
PAPER_CLOSE_FRACTION = 0.28
PAPER_EARLY_RESOLVERS = 0.22


def test_bench_fig04(benchmark, output_dir):
    trace = generate_nl_trace(NlTraceConfig(recursive_count=2000, seed=SEED))

    def regenerate():
        medians = interarrival_medians(trace)
        ecdf = Ecdf(list(medians.values()))
        lines = ["Figure 4: ECDF of median inter-arrival to ns1-ns5.dns.nl",
                 f"{'delta-t (s)':>12}  {'CDF':>6}"]
        for x in (600, 1200, 1800, 2400, 3000, 3400, 3600, 3700, 4000, 6000):
            lines.append(f"{x:>12}  {ecdf.at(x):>6.3f}")
        return "\n".join(lines), medians, ecdf

    text, medians, ecdf = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    close = close_query_fraction(trace)
    early = sum(1 for value in medians.values() if value < 3400) / len(medians)
    emit(
        output_dir,
        "fig04",
        text
        + f"\n\nclose-query fraction: measured {close:.3f} vs paper {PAPER_CLOSE_FRACTION:.2f}"
        + f"\nearly-refresh resolvers: measured {early:.3f} vs paper {PAPER_EARLY_RESOLVERS:.2f}",
    )

    # The big jump sits at the 3600 s TTL.
    assert ecdf.at(3700) - ecdf.at(3400) > 0.3
    assert abs(close - PAPER_CLOSE_FRACTION) < 0.15
    assert abs(early - PAPER_EARLY_RESOLVERS) < 0.15
