"""Extension bench — the full loss × TTL resilience surface.

Generalizes Table 4's sampled points into the surface an operator would
consult. The paper's sampled cells anchor the assertions: mild attacks
are survivable at any TTL, heavy attacks require caches, and the TTL
gradient at 90% loss matches Experiments H vs I.
"""

from conftest import SEED, emit

from repro.analysis.tables import render_matrix
from repro.core.experiments.sweep import run_sweep

PROBES = 150


def test_bench_sweep_surface(benchmark, output_dir):
    sweep = run_sweep(
        losses=(0.5, 0.75, 0.9),
        ttls=(60, 300, 1800),
        probe_count=PROBES,
        seed=SEED,
        attack_start_min=40.0,
        attack_duration_min=40.0,
    )

    def regenerate():
        rows = [
            (
                f"TTL {ttl}",
                [f"{value:.1%}" for value in row],
            )
            for ttl, row in zip(sweep.ttls(), sweep.failure_matrix())
        ]
        return render_matrix(
            "Resilience surface: failures during attack "
            f"({PROBES} probes; paper anchors: E=8.5%, F=19%, H=40%, I=63%)",
            [f"{loss:.0%} loss" for loss in sweep.losses()],
            rows,
        )

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    emit(output_dir, "sweep_surface", text)

    # Paper anchors, loosely: mild attacks survivable everywhere.
    for ttl in sweep.ttls():
        assert sweep.point(0.5, ttl).failure_during < 0.30
    # Heavy attack: caching is the difference (H vs I).
    assert (
        sweep.point(0.9, 1800).failure_during
        < sweep.point(0.9, 60).failure_during - 0.05
    )
    # Monotone in loss at every TTL (small-sample slack).
    for ttl in sweep.ttls():
        failures = [
            sweep.point(loss, ttl).failure_during for loss in sweep.losses()
        ]
        assert failures[0] <= failures[-1] + 0.03
    # Amplification grows with loss at fixed TTL.
    assert (
        sweep.point(0.9, 1800).amplification
        > sweep.point(0.5, 1800).amplification
    )
