"""Figure 5 — per-recursive query counts for the nl DS record at the roots."""

from conftest import SEED, emit

from repro.workloads.ditl import (
    DitlConfig,
    fraction_at_least,
    generate_ditl_counts,
    per_letter_cdf,
)

# Paper §4.2: ~87% of recursives send one query per day; F-Root sees
# ~5% sending >=5, H-Root >10%.
PAPER_SINGLE_SHARE = 0.87


def test_bench_fig05(benchmark, output_dir):
    counts = generate_ditl_counts(DitlConfig(recursive_count=20000, seed=SEED))

    def regenerate():
        cdfs = per_letter_cdf(counts, max_queries=30)
        lines = [
            "Figure 5: CDF of queries per recursive for nl DS (24 h)",
            f"{'n':>4} {'F-Root':>8} {'H-Root':>8} {'ALL':>8}",
        ]
        for n in (1, 2, 5, 10, 20, 30):
            lines.append(
                f"{n:>4} {cdfs['F'][n - 1]:>8.3f} {cdfs['H'][n - 1]:>8.3f} "
                f"{cdfs['ALL'][n - 1]:>8.3f}"
            )
        return "\n".join(lines), cdfs

    text, cdfs = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    singles = cdfs["ALL"][0]
    f_heavy = fraction_at_least(counts, "F", 5)
    h_heavy = fraction_at_least(counts, "H", 5)
    emit(
        output_dir,
        "fig05",
        text
        + f"\n\nsingle-query share: measured {singles:.3f} vs paper {PAPER_SINGLE_SHARE:.2f}"
        + f"\nF-Root >=5 queries: {f_heavy:.3f} (paper ~0.05); H-Root: {h_heavy:.3f} (paper >0.10)",
    )

    assert abs(singles - PAPER_SINGLE_SHARE) < 0.07
    assert h_heavy > f_heavy  # H-Root "worst", F-Root "friendliest"
    max_total = max(sum(per.values()) for per in counts.values())
    assert max_total > 1000  # the long tail the paper reports
