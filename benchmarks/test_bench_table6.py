"""Table 6 / §A.3 — what one resolver caches for amazon.com-style zones."""

from conftest import emit

from repro.analysis.tables import render_kv_table
from repro.core.experiments.glue import run_cache_dump_study

# Paper: the child publishes NS at 3600 s, the parent (.com) at 172800 s;
# both BIND's and Unbound's cache dumps show ~3595 s remaining.
PAPER_CHILD_TTL = 3600


def test_bench_table6(benchmark, output_dir):
    results = {
        software: run_cache_dump_study(software)
        for software in ("bind", "unbound")
    }

    def regenerate():
        sections = []
        for software in ("bind", "unbound"):
            result = results[software]
            rows = [
                (f"{name} {rtype}", f"ttl={ttl} auth={auth}")
                for name, rtype, ttl, auth in sorted(result.dump)
            ]
            rows.append(("answered", result.answered))
            rows.append(("NS cached TTL", result.ns_cached_ttl))
            sections.append(
                render_kv_table(
                    f"Table 6 cache dump ({software}): parent TTL 172800, child 3600",
                    rows,
                )
            )
        return "\n\n".join(sections)

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    emit(output_dir, "table6", text)

    for software in ("bind", "unbound"):
        result = results[software]
        assert result.answered
        assert result.stored_child_value, (
            f"{software} cached {result.ns_cached_ttl}, expected ~{PAPER_CHILD_TTL}"
        )
