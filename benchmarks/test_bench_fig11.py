"""Figure 11 — per-probe Rn fan-out and query amplification (Experiment I).

Paper: the median number of exit recursives per probe doubles (1 -> 2),
the 90th percentile doubles (2 -> 4), and per-probe query counts grow
~3x at the median and >6x at the 90th percentile during the attack.
"""

from conftest import emit

from repro.analysis.figures import render_series


def test_bench_fig11(benchmark, runs, output_dir):
    result = runs.ddos("I")

    def regenerate():
        rows = [
            (
                int(row.round_index * 10),
                row.rn_median,
                row.rn_p90,
                row.rn_max,
                row.queries_median,
                row.queries_p90,
                row.queries_max,
            )
            for row in result.per_probe()
        ]
        return render_series(
            "Figure 11: per-probe Rn and AAAA-for-PID queries (Experiment I)",
            rows,
            ["minute", "Rn-med", "Rn-p90", "Rn-max", "q-med", "q-p90", "q-max"],
        )

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    emit(output_dir, "fig11", text)

    rows = {row.round_index: row for row in result.per_probe()}
    normal = rows[3]
    attacked = rows[8]
    assert attacked.queries_median >= normal.queries_median * 2
    assert attacked.queries_p90 >= normal.queries_p90 * 2
    assert attacked.rn_p90 >= normal.rn_p90
    assert attacked.queries_max > normal.queries_max
