"""Table 4 — the DDoS experiment matrix: parameters and outcome summary."""

from conftest import DDOS_PROBES, emit

from repro.analysis.tables import render_matrix
from repro.core.experiments import DDOS_EXPERIMENTS

# Paper §5.4 failure fractions during the attack window.
PAPER_FAILURES = {
    "E": 0.085,
    "F": 0.190,
    "H": 0.403,
    "I": 0.630,
}


def test_bench_table4(benchmark, runs, output_dir):
    keys = list("ABCDEFGHI")
    results = {key: runs.ddos(key) for key in keys}

    def regenerate():
        rows = []
        for key in keys:
            spec = DDOS_EXPERIMENTS[key]
            result = results[key]
            rows.append(
                (
                    key,
                    [
                        spec.ttl,
                        f"{spec.loss_fraction:.0%}",
                        spec.servers,
                        len(result.answers),
                        f"{result.failure_fraction_before_attack():.3f}",
                        f"{result.failure_fraction_during_attack():.3f}",
                    ],
                )
            )
        return render_matrix(
            f"Table 4: DDoS experiments A-I ({DDOS_PROBES} probes; paper ~9k)",
            ["TTL", "loss", "servers", "queries", "fail-pre", "fail-ddos"],
            rows,
        )

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    comparison = "\n".join(
        f"  {key}: measured {results[key].failure_fraction_during_attack():.3f}"
        f" vs paper {paper:.3f}"
        for key, paper in PAPER_FAILURES.items()
    )
    emit(output_dir, "table4", text + "\n\nAttack-window failures:\n" + comparison)

    for key, paper in PAPER_FAILURES.items():
        measured = results[key].failure_fraction_during_attack()
        assert abs(measured - paper) < 0.15, f"{key}: {measured} vs {paper}"

    # Ordering: more loss -> more failures; shorter TTL -> more failures.
    fail = {k: results[k].failure_fraction_during_attack() for k in keys}
    assert fail["E"] < fail["F"] < fail["H"] < fail["I"]
    assert fail["D"] < fail["E"] + 0.05  # one-server attack barely visible
