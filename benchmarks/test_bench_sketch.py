"""Per-source accounting cost: exact dictionary vs streaming sketches.

The flight recorder's :class:`~repro.obs.sketch.SourceSketch` sits on
the authoritative offered-load hot path (one ``update`` per offered
query), so its per-update cost is what the timeline feature charges a
telemetry-enabled run. This benchmark times it against the exact
per-source dictionary the query log already maintains — the baseline it
must stay within a small constant factor of — and records the accuracy
it buys: heavy-hitter counts within ``epsilon * N`` of exact on a
Zipf-skewed source stream shaped like a spoofed flood over a legitimate
population.
"""

import random

import pytest
from conftest import emit

from repro.obs import SourceSketch

STREAM_LENGTH = 100_000
DISTINCT_SOURCES = 2_000
SEED = 42


def build_stream():
    """Zipf-skewed source stream: few attackers dominate a long tail."""
    rng = random.Random(SEED)
    sources = [
        f"100.64.{rank // 256}.{rank % 256}"
        for rank in range(DISTINCT_SOURCES)
    ]
    weights = [1.0 / (rank + 1) for rank in range(DISTINCT_SOURCES)]
    return rng.choices(sources, weights=weights, k=STREAM_LENGTH)


def exact_accounting(stream):
    counts = {}
    for src in stream:
        counts[src] = counts.get(src, 0) + 1
    return counts


def sketch_accounting(stream):
    sketch = SourceSketch(epsilon=0.01, delta=0.01, topk=16)
    update = sketch.update
    for src in stream:
        update(src)
    return sketch


def test_bench_source_accounting_exact_vs_sketch(benchmark, output_dir):
    stream = build_stream()
    truth = exact_accounting(stream)

    sketch = benchmark.pedantic(
        lambda: sketch_accounting(stream), rounds=3, iterations=1
    )
    sketch_seconds = benchmark.stats.stats.min

    # Time the exact dictionary inline (one benchmark fixture per test).
    import time

    exact_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        exact_accounting(stream)
        exact_seconds = min(exact_seconds, time.perf_counter() - start)

    # The accuracy the sketch buys at its fixed footprint.
    bound = sketch.cms.error_bound()
    worst = max(
        abs(count - truth[src])
        for src, count, _error in sketch.heavy_hitters(10)
    )
    assert worst <= bound
    assert sketch.total == STREAM_LENGTH

    emit(
        output_dir,
        "sketch_accounting",
        "Per-source accounting over "
        f"{STREAM_LENGTH} queries / {DISTINCT_SOURCES} sources (Zipf):\n"
        f"  exact dict   {exact_seconds * 1e3:8.1f} ms "
        f"({STREAM_LENGTH / exact_seconds:,.0f} updates/s)\n"
        f"  SourceSketch {sketch_seconds * 1e3:8.1f} ms "
        f"({STREAM_LENGTH / sketch_seconds:,.0f} updates/s, "
        f"{sketch_seconds / exact_seconds:.1f}x exact)\n"
        f"  top-10 worst absolute error {worst} "
        f"(bound epsilon*N = {bound:.0f}), "
        f"distinct estimate {sketch.distinct():.0f} "
        f"vs true {len(truth)}",
    )
