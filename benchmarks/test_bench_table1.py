"""Table 1 — caching baseline dataset accounting.

Paper values are for ~9k probes; the reproduction runs 600, so absolute
counts scale by ~1/15 while the *ratios* (valid probes, answered
queries, discarded answers) are the comparison target.
"""

from conftest import BASELINE_PROBES, emit

from repro.analysis.tables import render_matrix

# Paper Table 1 ratios (derived from the published counts).
PAPER_RATIOS = {
    "probes_valid": 0.953,  # e.g. 8725/9173
    "answered": 0.954,  # 90525/94856
    "answers_valid": 0.995,  # 90079/90525
}


def test_bench_table1(benchmark, runs, output_dir):
    results = {
        key: runs.baseline(key) for key in ("60", "1800", "3600", "86400", "3600-10m")
    }

    def regenerate():
        columns = list(results)
        rows = []
        row_labels = [
            ("Probes", lambda d: d.probes),
            ("Probes (val.)", lambda d: d.probes_valid),
            ("Probes (disc.)", lambda d: d.probes_discarded),
            ("VPs", lambda d: d.vps),
            ("Queries", lambda d: d.queries),
            ("Answers", lambda d: d.answers),
            ("Answers (val.)", lambda d: d.answers_valid),
            ("Answers (disc.)", lambda d: d.answers_discarded),
        ]
        for label, getter in row_labels:
            rows.append(
                (label, [getter(results[key].dataset) for key in columns])
            )
        return render_matrix(
            f"Table 1: caching baseline datasets ({BASELINE_PROBES} probes; paper: ~9k)",
            columns,
            rows,
        )

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)

    dataset = results["1800"].dataset
    ratios = {
        "probes_valid": dataset.probes_valid / dataset.probes,
        "answered": dataset.answers / dataset.queries,
        "answers_valid": dataset.answers_valid / dataset.answers,
    }
    comparison = "\n".join(
        f"  {name}: measured {measured:.3f} vs paper {PAPER_RATIOS[name]:.3f}"
        for name, measured in ratios.items()
    )
    emit(output_dir, "table1", text + "\n\nKey ratios (TTL 1800):\n" + comparison)

    assert ratios["probes_valid"] > 0.9
    assert ratios["answered"] > 0.9
    assert ratios["answers_valid"] > 0.95
