"""Raw simcore kernel throughput — the floor under every experiment.

Times the event loop itself, with no DNS logic on top, in the two shapes
the emulations stress: a dense schedule-then-drain burst (probing
rounds) and a retry pattern where most timers are cancelled before
firing (the DDoS retry storm). Tracking these keeps kernel regressions
visible in the perf trajectory independently of experiment-level
changes.
"""

import time

from conftest import emit

from repro.defense.capacity import ServiceCapacity
from repro.defense.rrl import SEND, ResponseRateLimiter
from repro.simcore.simulator import Simulator

BURST_EVENTS = 50_000
RETRY_TIMERS = 20_000
ATTACK_EVENTS = 40_000
ATTACK_CHAINS = 16


def drain_burst() -> int:
    """Schedule a flat burst of timers and drain it."""
    sim = Simulator()
    sink = []
    append = sink.append
    for index in range(BURST_EVENTS):
        sim.call_later((index % 977) * 1e-3, append, index)
    sim.run()
    return sim.events_processed


def retry_storm() -> int:
    """Resolver-style timers: most are cancelled before they fire.

    Every 'query' schedules a retry timer and an 'answer' that cancels
    it — the hot pattern under attack, where the heap fills with
    cancelled entries that pop() must skip cheaply.
    """
    sim = Simulator()
    cancelled = 0

    def answer(timer):
        nonlocal cancelled
        timer.cancel()
        cancelled += 1

    for index in range(RETRY_TIMERS):
        timer = sim.call_later(5.0 + (index % 31) * 0.1, lambda: None)
        sim.call_later((index % 31) * 0.1, answer, timer)
    sim.run()
    return cancelled


def attack_flood() -> int:
    """Attack-traffic event path: self-rescheduling attacker chains.

    Each attacker is a timer chain (the :mod:`repro.attackload` shape —
    no Host object, every query is one kernel event) and every event
    runs the defense hot path: one RRL token-bucket check plus one
    capacity admission. This is the per-packet cost a flooded
    authoritative pays, isolated from DNS message handling.
    """
    sim = Simulator()
    rrl = ResponseRateLimiter(rate=20.0, burst=40.0, slip=2, prefix_len=24)
    capacity = ServiceCapacity(rate=1000.0, queue_limit=64)
    per_chain = ATTACK_EVENTS // ATTACK_CHAINS
    served = 0

    def fire(source, remaining, interval):
        nonlocal served
        if rrl.check(source, sim.now) == SEND:
            if capacity.admit(sim.now) is not None:
                served += 1
        if remaining:
            sim.call_later(interval, fire, source, remaining - 1, interval)

    for index in range(ATTACK_CHAINS):
        sim.call_later(
            index * 1e-3,
            fire,
            f"203.0.{index}.1",
            per_chain - 1,
            0.01 + index * 1e-4,
        )
    sim.run()
    return sim.events_processed


def test_bench_kernel_burst(benchmark, output_dir):
    processed = benchmark.pedantic(drain_burst, rounds=3, iterations=1)
    assert processed == BURST_EVENTS
    seconds = benchmark.stats.stats.mean
    emit(
        output_dir,
        "kernel_burst",
        "Kernel burst throughput: "
        f"{processed} events in {seconds * 1e3:.1f} ms "
        f"({processed / seconds:,.0f} events/s)",
    )


def test_bench_kernel_retry_storm(benchmark, output_dir):
    cancelled = benchmark.pedantic(retry_storm, rounds=3, iterations=1)
    assert cancelled == RETRY_TIMERS
    seconds = benchmark.stats.stats.mean
    total = 2 * RETRY_TIMERS
    emit(
        output_dir,
        "kernel_retry",
        "Kernel retry-storm throughput: "
        f"{total} timers ({cancelled} cancelled) in {seconds * 1e3:.1f} ms "
        f"({total / seconds:,.0f} timers/s)",
    )


def test_bench_kernel_attack_flood(benchmark, output_dir):
    processed = benchmark.pedantic(attack_flood, rounds=3, iterations=1)
    assert processed == ATTACK_EVENTS
    seconds = benchmark.stats.stats.mean
    emit(
        output_dir,
        "kernel_attack",
        "Kernel attack-flood throughput: "
        f"{processed} events ({ATTACK_CHAINS} chains, RRL + capacity per "
        f"event) in {seconds * 1e3:.1f} ms "
        f"({processed / seconds:,.0f} events/s)",
    )


def test_cancelled_events_do_not_pin_callbacks():
    """Long retry-heavy runs must not accumulate closure references."""
    sim = Simulator()
    timers = [sim.call_later(60.0, (lambda v: v), object()) for _ in range(100)]
    for timer in timers:
        timer.cancel()
    assert all(timer.callback is None for timer in timers)
    assert sim.pending() == 0
    start = time.time()
    sim.run()
    assert time.time() - start < 1.0
