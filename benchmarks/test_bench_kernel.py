"""Raw simcore kernel throughput — the floor under every experiment.

Times the event loop itself, with no DNS logic on top, in the two shapes
the emulations stress: a dense schedule-then-drain burst (probing
rounds) and a retry pattern where most timers are cancelled before
firing (the DDoS retry storm). Tracking these keeps kernel regressions
visible in the perf trajectory independently of experiment-level
changes.

Every workload is parametrized over the available event-queue backends
(heap reference, timer wheel, calendar queue, native C kernel when
built); all backends process the identical event sequence, so the same
assertions hold everywhere and the numbers differ only in wall time.
The committed ``benchmarks/output/kernel_*.txt`` artifacts record the
default backend (``auto``-resolved); other backends write suffixed
files for comparison without disturbing the tracked baseline.
"""

import time

import pytest
from conftest import emit

from repro.defense.capacity import ServiceCapacity
from repro.defense.rrl import SEND, ResponseRateLimiter
from repro.simcore.events import QUEUE_BACKENDS, resolve_queue_backend
from repro.simcore.simulator import Simulator

BURST_EVENTS = 50_000
RETRY_TIMERS = 20_000
ATTACK_EVENTS = 40_000
ATTACK_CHAINS = 16

BACKENDS = sorted(QUEUE_BACKENDS)
DEFAULT_BACKEND = resolve_queue_backend("auto")


def _artifact(stem: str, backend: str) -> str:
    """Plain name for the tracked default backend, suffixed otherwise."""
    if backend == DEFAULT_BACKEND:
        return stem
    return f"{stem}_{backend}"


def drain_burst(backend: str = "auto") -> int:
    """Schedule a flat burst of timers and drain it."""
    sim = Simulator(queue_backend=backend)
    sink = []
    append = sink.append
    for index in range(BURST_EVENTS):
        sim.call_later((index % 977) * 1e-3, append, index)
    sim.run()
    return sim.events_processed


def retry_storm(backend: str = "auto") -> int:
    """Resolver-style timers: most are cancelled before they fire.

    Every 'query' schedules a retry timer and an 'answer' that cancels
    it — the hot pattern under attack, where the queue fills with
    cancelled entries that the backend must skip cheaply.
    """
    sim = Simulator(queue_backend=backend)
    cancelled = 0

    def answer(timer):
        nonlocal cancelled
        timer.cancel()
        cancelled += 1

    for index in range(RETRY_TIMERS):
        timer = sim.call_later(5.0 + (index % 31) * 0.1, lambda: None)
        sim.call_later((index % 31) * 0.1, answer, timer)
    sim.run()
    return cancelled


def attack_flood(backend: str = "auto") -> int:
    """Attack-traffic event path: self-rescheduling attacker chains.

    Each attacker is a timer chain (the :mod:`repro.attackload` shape —
    no Host object, every query is one kernel event) and every event
    runs the defense hot path: one RRL token-bucket check plus one
    capacity admission. This is the per-packet cost a flooded
    authoritative pays, isolated from DNS message handling.
    """
    sim = Simulator(queue_backend=backend)
    rrl = ResponseRateLimiter(rate=20.0, burst=40.0, slip=2, prefix_len=24)
    capacity = ServiceCapacity(rate=1000.0, queue_limit=64)
    per_chain = ATTACK_EVENTS // ATTACK_CHAINS
    served = 0

    def fire(source, remaining, interval):
        nonlocal served
        if rrl.check(source, sim.now) == SEND:
            if capacity.admit(sim.now) is not None:
                served += 1
        if remaining:
            sim.call_later(interval, fire, source, remaining - 1, interval)

    for index in range(ATTACK_CHAINS):
        sim.call_later(
            index * 1e-3,
            fire,
            f"203.0.{index}.1",
            per_chain - 1,
            0.01 + index * 1e-4,
        )
    sim.run()
    return sim.events_processed


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_kernel_burst(benchmark, output_dir, backend):
    processed = benchmark.pedantic(
        lambda: drain_burst(backend), rounds=3, iterations=1
    )
    assert processed == BURST_EVENTS
    seconds = benchmark.stats.stats.min
    emit(
        output_dir,
        _artifact("kernel_burst", backend),
        f"Kernel burst throughput [{backend} backend]: "
        f"{processed} events in {seconds * 1e3:.1f} ms "
        f"({processed / seconds:,.0f} events/s)",
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_kernel_retry_storm(benchmark, output_dir, backend):
    cancelled = benchmark.pedantic(
        lambda: retry_storm(backend), rounds=3, iterations=1
    )
    assert cancelled == RETRY_TIMERS
    seconds = benchmark.stats.stats.min
    total = 2 * RETRY_TIMERS
    emit(
        output_dir,
        _artifact("kernel_retry", backend),
        f"Kernel retry-storm throughput [{backend} backend]: "
        f"{total} timers ({cancelled} cancelled) in {seconds * 1e3:.1f} ms "
        f"({total / seconds:,.0f} timers/s)",
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_kernel_attack_flood(benchmark, output_dir, backend):
    processed = benchmark.pedantic(
        lambda: attack_flood(backend), rounds=3, iterations=1
    )
    assert processed == ATTACK_EVENTS
    seconds = benchmark.stats.stats.min
    emit(
        output_dir,
        _artifact("kernel_attack", backend),
        f"Kernel attack-flood throughput [{backend} backend]: "
        f"{processed} events ({ATTACK_CHAINS} chains, RRL + capacity per "
        f"event) in {seconds * 1e3:.1f} ms "
        f"({processed / seconds:,.0f} events/s)",
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_cancelled_events_do_not_pin_callbacks(backend):
    """Long retry-heavy runs must not accumulate closure references."""
    sim = Simulator(queue_backend=backend)
    timers = [sim.call_later(60.0, (lambda v: v), object()) for _ in range(100)]
    for timer in timers:
        timer.cancel()
    assert all(timer.callback is None for timer in timers)
    assert sim.pending() == 0
    start = time.time()
    sim.run()
    assert time.time() - start < 1.0
