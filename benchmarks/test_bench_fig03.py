"""Figure 3 — warm-cache answer classification per TTL experiment."""

from conftest import emit

from repro.analysis.tables import render_matrix

# The miss percentages printed above each bar in the paper's Figure 3.
PAPER_MISS = {
    "60": 0.000,
    "1800": 0.326,
    "3600": 0.329,
    "86400": 0.309,
    "3600-10m": 0.285,
}


def test_bench_fig03(benchmark, runs, output_dir):
    results = {key: runs.baseline(key) for key in PAPER_MISS}

    def regenerate():
        columns = list(results)
        tables = {key: result.table2 for key, result in results.items()}
        rows = [
            (label, [getattr(tables[key], attr) for key in columns])
            for label, attr in (
                ("AA", "aa"),
                ("CC", "cc"),
                ("AC", "ac"),
                ("CA", "ca"),
            )
        ]
        rows.append(
            ("miss %", [f"{tables[key].miss_rate:.1%}" for key in columns])
        )
        rows.append(
            ("paper %", [f"{PAPER_MISS[key]:.1%}" for key in columns])
        )
        return render_matrix(
            "Figure 3: warm-cache answer classes per experiment",
            columns,
            rows,
        )

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    emit(output_dir, "fig03", text)

    # Shape: TTL 60 all-authoritative; longer TTLs ~30% misses, CC biggest.
    assert results["60"].table2.aa == results["60"].table2.subsequent
    for key in ("1800", "3600", "86400", "3600-10m"):
        table = results[key].table2
        assert table.cc > table.aa or key == "1800"
        assert abs(table.miss_rate - PAPER_MISS[key]) < 0.10
