"""Figure 9 — latency quantiles during partial attacks.

Paper shape: medians stay low while tails stretch with attack
intensity; killing the cache (Experiment I, TTL 60) triples the median
(~390 ms with a 30-minute TTL vs ~1300 ms without, §5.5).
"""

from conftest import emit

from repro.analysis.figures import render_series


def test_bench_fig09(benchmark, runs, output_dir):
    results = {key: runs.ddos(key) for key in ("E", "F", "H", "I")}

    def regenerate():
        sections = []
        for label, key in zip("abcd", results):
            result = results[key]
            rows = [
                (
                    int(row.round_index * 10),
                    round(row.median_ms, 1),
                    round(row.mean_ms, 1),
                    round(row.p75_ms, 1),
                    round(row.p90_ms, 1),
                )
                for row in result.latency_series()
            ]
            sections.append(
                render_series(
                    f"Figure 9{label}: Experiment {key} latency (ms), "
                    "attack minutes 60-120",
                    rows,
                    ["minute", "median", "mean", "p75", "p90"],
                )
            )
        return "\n\n".join(sections)

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    emit(output_dir, "fig09", text)

    def series_of(key):
        return {row.round_index: row for row in results[key].latency_series()}

    # Medians barely move at 50% loss; tails stretch.
    e = series_of("E")
    assert e[8].median_ms < e[1].median_ms * 3
    assert e[8].p90_ms > e[1].p90_ms * 2

    # More loss, longer tails: F and H worse than E.
    f = series_of("F")
    h = series_of("H")
    assert f[8].p90_ms > e[8].p90_ms
    assert h[8].p90_ms >= f[8].p90_ms * 0.8

    # No cache (I): median latency during attack far above H's.
    i = series_of("I")
    assert i[8].median_ms > h[8].median_ms * 3
