"""Table 2 — valid-answer classification (AA/CC/AC/CA, TTL manipulation)."""

from conftest import emit

from repro.analysis.tables import render_matrix

# Paper Table 2 cache-miss fractions per experiment (Figure 3 labels).
PAPER_MISS = {
    "60": 0.000,
    "1800": 0.326,
    "3600": 0.329,
    "86400": 0.309,
    "3600-10m": 0.285,
}
# Paper: ~30% of day-long-TTL warm-ups come back shortened; ~2% at <=1h.
PAPER_WARMUP_ALTERED = {"3600": 0.018, "86400": 0.305}


def test_bench_table2(benchmark, runs, output_dir):
    results = {key: runs.baseline(key) for key in PAPER_MISS}

    def regenerate():
        columns = list(results)
        tables = {key: result.table2 for key, result in results.items()}
        rows = [
            (label, [dict(tables[key].as_rows())[label] for key in columns])
            for label, _ in tables["1800"].as_rows()
        ]
        rows.append(
            (
                "miss rate",
                [f"{tables[key].miss_rate:.3f}" for key in columns],
            )
        )
        rows.append(
            ("paper miss", [f"{PAPER_MISS[key]:.3f}" for key in columns])
        )
        return render_matrix(
            "Table 2: answer classification (measured vs paper miss rates)",
            columns,
            rows,
        )

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    emit(output_dir, "table2", text)

    for key, result in results.items():
        measured = result.miss_rate
        paper = PAPER_MISS[key]
        assert abs(measured - paper) < 0.10, f"{key}: {measured} vs {paper}"

    # TTL-manipulation shape: rare at 1h, ~30% at 1 day.
    t3600 = results["3600"].table2
    t86400 = results["86400"].table2
    assert t3600.warmup_ttl_altered / t3600.warmup < 0.08
    assert 0.18 < t86400.warmup_ttl_altered / t86400.warmup < 0.45

    # Fragmentation markers (CCdec) appear once TTLs outlive rounds.
    assert results["86400"].table2.cc_decreasing > 0
    assert results["60"].table2.cc == 0
