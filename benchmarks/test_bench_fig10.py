"""Figure 10 — offered load at the authoritatives by query kind.

Paper multipliers over pre-attack load: 3.5x (F, 75% loss), 8.2x (H,
90%), 8.1x (I, 90% with minimal TTL); caching shaves ~40% off the
offered load between H and I.
"""

from conftest import emit

from repro.analysis.figures import render_timeseries_table

PAPER_AMPLIFICATION = {"F": 3.5, "H": 8.2, "I": 8.1}


def test_bench_fig10(benchmark, runs, output_dir):
    results = {key: runs.ddos(key) for key in ("F", "H", "I")}

    def regenerate():
        sections = []
        for label, key in zip("abc", results):
            result = results[key]
            sections.append(
                render_timeseries_table(
                    f"Figure 10{label}: Experiment {key} offered queries by kind",
                    result.authoritative_load(),
                    ["NS", "A-for-NS", "AAAA-for-NS", "AAAA-for-PID"],
                    attack_rounds=list(range(6, 12)),
                )
            )
        return "\n\n".join(sections)

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    comparison = "\n".join(
        f"  {key}: measured {results[key].amplification():.1f}x"
        f" vs paper {paper:.1f}x"
        for key, paper in PAPER_AMPLIFICATION.items()
    )
    emit(output_dir, "fig10", text + "\n\noffered-load multipliers:\n" + comparison)

    amp = {key: results[key].amplification() for key in results}
    # Within a factor-two band of the paper, and ordered F < H.
    for key, paper in PAPER_AMPLIFICATION.items():
        assert paper / 2.5 < amp[key] < paper * 2.5, f"{key}: {amp[key]}"
    assert amp["F"] < amp["H"]

    # All four query kinds appear during the attack (negative-cached
    # AAAA-for-NS keeps coming back, §6.1).
    load_h = results["H"].authoritative_load()
    mid = load_h[8]
    for kind in ("NS", "A-for-NS", "AAAA-for-NS", "AAAA-for-PID"):
        assert mid.get(kind, 0) > 0, f"missing {kind} during attack"
