"""Shared machinery for the reproduction benchmarks.

Each benchmark regenerates one of the paper's tables or figures. The
underlying simulation runs are expensive, so a session-scoped
:class:`RunCache` runs each experiment once (at reduced scale — the
shapes are scale-invariant, see DESIGN.md §4) and the benchmarks time
the regeneration/analysis step against the cached raw data. Every
benchmark also writes its rendered output (measured next to the paper's
reported values) to ``benchmarks/output/<id>.txt``.

The in-memory session cache is backed by the persistent
:class:`repro.runner.DiskCache` (``benchmarks/.runcache`` by default,
``$REPRO_CACHE_DIR`` to relocate), so repeat benchmark sessions against
unchanged code skip the simulations entirely; any edit to ``src/repro``
changes the code fingerprint and recomputes from scratch.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.core.experiments import BASELINE_EXPERIMENTS, DDOS_EXPERIMENTS
from repro.runner import (
    DiskCache,
    baseline_request,
    ddos_request,
    run_many,
)

# Reduced-scale population sizes (paper: ~9000 probes).
BASELINE_PROBES = 600
DDOS_PROBES = 400
SEED = 42

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"
RUNCACHE_DIR = os.environ.get(
    "REPRO_CACHE_DIR", str(pathlib.Path(__file__).parent / ".runcache")
)


class RunCache:
    """Runs each experiment at most once per session, once per code version
    on disk."""

    def __init__(self) -> None:
        self._results = {}
        self._disk = DiskCache(RUNCACHE_DIR)

    def _run(self, request):
        key = (request.kind, request.spec.key)
        if key not in self._results:
            [self._results[key]] = run_many([request], cache=self._disk)
        return self._results[key]

    def baseline(self, key: str):
        return self._run(
            baseline_request(
                BASELINE_EXPERIMENTS[key], probe_count=BASELINE_PROBES, seed=SEED
            )
        )

    def ddos(self, key: str):
        return self._run(
            ddos_request(
                DDOS_EXPERIMENTS[key], probe_count=DDOS_PROBES, seed=SEED
            )
        )


@pytest.fixture(scope="session")
def runs() -> RunCache:
    return RunCache()


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def emit(output_dir: pathlib.Path, name: str, text: str) -> None:
    """Print the rendered table/figure and persist it as an artifact."""
    print()
    print(text)
    (output_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
