"""Shared machinery for the reproduction benchmarks.

Each benchmark regenerates one of the paper's tables or figures. The
underlying simulation runs are expensive, so a session-scoped
:class:`RunCache` runs each experiment once (at reduced scale — the
shapes are scale-invariant, see DESIGN.md §4) and the benchmarks time
the regeneration/analysis step against the cached raw data. Every
benchmark also writes its rendered output (measured next to the paper's
reported values) to ``benchmarks/output/<id>.txt``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.experiments import (
    BASELINE_EXPERIMENTS,
    DDOS_EXPERIMENTS,
    run_baseline,
    run_ddos,
)

# Reduced-scale population sizes (paper: ~9000 probes).
BASELINE_PROBES = 600
DDOS_PROBES = 400
SEED = 42

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


class RunCache:
    """Runs each experiment at most once per pytest session."""

    def __init__(self) -> None:
        self._baselines = {}
        self._ddos = {}

    def baseline(self, key: str):
        if key not in self._baselines:
            self._baselines[key] = run_baseline(
                BASELINE_EXPERIMENTS[key], probe_count=BASELINE_PROBES, seed=SEED
            )
        return self._baselines[key]

    def ddos(self, key: str):
        if key not in self._ddos:
            self._ddos[key] = run_ddos(
                DDOS_EXPERIMENTS[key], probe_count=DDOS_PROBES, seed=SEED
            )
        return self._ddos[key]


@pytest.fixture(scope="session")
def runs() -> RunCache:
    return RunCache()


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def emit(output_dir: pathlib.Path, name: str, text: str) -> None:
    """Print the rendered table/figure and persist it as an artifact."""
    print()
    print(text)
    (output_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
