"""Figure 16 — BIND vs Unbound query counts, normal vs all-servers-dead.

Paper (Appendix E): BIND needs 3 queries normally and ~12 when the
target zone is unreachable (it re-asks the parents); Unbound needs 5-6
normally and ~46 under failure, most of them chasing the nameservers'
nonexistent AAAA records.
"""

from conftest import SEED, emit

from repro.analysis.tables import render_matrix
from repro.core.experiments.software import run_software_study

PAPER_TOTALS = {
    ("bind", False): 3,
    ("bind", True): 12,
    ("unbound", False): 5,
    ("unbound", True): 46,
}


def test_bench_fig16(benchmark, output_dir):
    results = {
        (software, attack): run_software_study(software, attack, seed=SEED)
        for software in ("bind", "unbound")
        for attack in (False, True)
    }

    def regenerate():
        rows = []
        for (software, attack), result in results.items():
            condition = "DDoS" if attack else "normal"
            rows.append(
                (
                    f"{software} ({condition})",
                    [
                        result.queries_root,
                        result.queries_tld,
                        result.queries_target,
                        result.total,
                        PAPER_TOTALS[(software, attack)],
                    ],
                )
            )
        return render_matrix(
            "Figure 16: queries per resolution by zone",
            ["root", "net", "cachetest.net", "total", "paper-total"],
            rows,
        )

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    emit(output_dir, "fig16", text)

    assert results[("bind", False)].total == 3
    assert 8 <= results[("bind", True)].total <= 20
    assert 5 <= results[("unbound", False)].total <= 12
    assert 30 <= results[("unbound", True)].total <= 80
    # Orderings the paper stresses.
    assert results[("unbound", True)].total > results[("bind", True)].total
    assert (
        results[("bind", True)].queries_root
        + results[("bind", True)].queries_tld
        > results[("bind", False)].queries_root
        + results[("bind", False)].queries_tld
    )
