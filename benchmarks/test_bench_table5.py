"""Table 5 — referral (parent) vs answer (child) TTL precedence."""

from conftest import SEED, emit

from repro.analysis.tables import render_kv_table
from repro.core.experiments.glue import run_glue_experiment

# Paper Table 5: for NS records, (60803 + 60391) / 128382 = 94.4% carry
# the child's TTL; ~0.2% the parent's exact value; ~5.4% in between.
PAPER_CHILD_FRACTION = 0.944


def test_bench_table5(benchmark, output_dir):
    result = run_glue_experiment(probe_count=400, seed=SEED, rounds=3)

    def regenerate():
        ns_text = render_kv_table(
            "Table 5 (NS record): returned TTLs, parent=3600 vs child=60",
            result.ns_buckets.as_rows(),
        )
        a_text = render_kv_table(
            "Table 5 (A record): returned TTLs, parent=3600 vs child=60",
            result.a_buckets.as_rows(),
        )
        return ns_text + "\n\n" + a_text

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    measured = result.ns_buckets.child_fraction
    emit(
        output_dir,
        "table5",
        text
        + f"\n\nchild-TTL fraction (NS): measured {measured:.3f}"
        + f" vs paper {PAPER_CHILD_FRACTION:.3f}",
    )

    assert measured > 0.85
    assert result.a_buckets.child_fraction > 0.85
    # A visible minority trusts the parent/referral value.
    parentish = result.ns_buckets.parent_exact + result.ns_buckets.between
    assert parentish > 0
