"""Figure 13 — answer-class mix over time for each baseline TTL.

Paper shape: at TTL 60 every round is all-AA; at longer TTLs AC stays
roughly constant across rounds (persistent fragmentation) while AA/CC
alternate with cache expiry.
"""

from conftest import emit

from repro.analysis.figures import render_timeseries_table


def test_bench_fig13(benchmark, runs, output_dir):
    keys = ("60", "1800", "3600", "86400", "3600-10m")
    results = {key: runs.baseline(key) for key in keys}

    def regenerate():
        sections = []
        for label, key in zip("abcde", keys):
            result = results[key]
            sections.append(
                render_timeseries_table(
                    f"Figure 13{label}: TTL {key} answer classes per round",
                    result.class_timeseries(),
                    ["AA", "AC", "CC", "CA"],
                    round_minutes=result.spec.probe_interval / 60.0,
                )
            )
        return "\n\n".join(sections)

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    emit(output_dir, "fig13", text)

    # TTL 60: all AA in every post-warmup round.
    for bucket in results["60"].class_timeseries().values():
        assert bucket["CC"] == 0
        assert bucket["AC"] == 0

    # TTL 3600 (20-min rounds): AC roughly constant across rounds.
    series = results["3600"].class_timeseries()
    ac_counts = [series[r]["AC"] for r in sorted(series) if r >= 1]
    assert ac_counts
    assert max(ac_counts) < 3 * max(1, min(ac_counts))

    # TTL 86400: effectively no AA after warm-up (nothing expires).
    series_day = results["86400"].class_timeseries()
    late_rounds = [series_day[r] for r in sorted(series_day) if r >= 2]
    assert sum(bucket["AA"] for bucket in late_rounds) < sum(
        bucket["CC"] for bucket in late_rounds
    ) * 0.2
