"""Figure 14 — Experiments D and G (Appendix D): answers over time.

Paper: with 50% loss at a single nameserver (D) clients notice nothing;
with 75% loss and a 300 s TTL (G) ~72% still get answers.
"""

from conftest import emit

from repro.analysis.figures import render_timeseries_table


def test_bench_fig14(benchmark, runs, output_dir):
    results = {key: runs.ddos(key) for key in ("D", "G")}

    def regenerate():
        sections = []
        for label, key in zip("ab", results):
            result = results[key]
            which = "one NS" if result.spec.servers == "one" else "both NSes"
            sections.append(
                render_timeseries_table(
                    f"Figure 14{label}: Experiment {key} "
                    f"({result.spec.loss_fraction:.0%} loss on {which}, "
                    f"TTL {result.spec.ttl}s)",
                    result.outcomes_by_round(),
                    ["ok", "servfail", "no_answer"],
                    attack_rounds=list(range(6, 12)),
                )
            )
        return "\n\n".join(sections)

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    emit(output_dir, "fig14", text)

    # D: no significant change in answered queries.
    d = results["D"]
    assert (
        d.failure_fraction_during_attack()
        < d.failure_fraction_before_attack() + 0.05
    )

    # G: the large majority (~72% in the paper) still obtain answers.
    g = results["G"]
    success = 1.0 - g.failure_fraction_during_attack()
    assert 0.55 < success < 0.95
