"""Figure 7 — answer-class timeseries for Experiment B (fragmented
caches keep some CC alive mid-attack; CA grows from serve-stale)."""

from conftest import emit

from repro.analysis.figures import render_timeseries_table


def test_bench_fig07(benchmark, runs, output_dir):
    result = runs.ddos("B")

    def regenerate():
        return render_timeseries_table(
            "Figure 7: Experiment B answer classes per round",
            result.class_timeseries(),
            ["AA", "CC", "AC", "CA"],
            attack_rounds=list(range(6, 12)),
        )

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    emit(output_dir, "fig07", text)

    series = result.class_timeseries()
    # Before the attack: a healthy AA/CC/AC mix.
    assert series[3]["AA"] + series[3]["AC"] > 0
    assert series[3]["CC"] > 0
    # During the attack (rounds 6-11): no fresh AA answers get through a
    # 100% drop; survivors are cache hits (CC), including hits on caches
    # filled between rounds 10 and 50 minutes (the paper's fragmented-
    # cache observation), plus stale CA answers.
    mid_attack = series[8]
    assert mid_attack["AA"] + mid_attack["AC"] == 0
    assert mid_attack["CC"] > 0
    total_ca_during = sum(series[r].get("CA", 0) for r in range(6, 12))
    assert total_ca_during > 0
