"""Extension bench — anycast catchments under partial-site attack (§8).

The paper explains the 2015/2016 root events' uneven outcomes with IP
anycast: catchments homed on attacked sites suffered, others did not,
and withdrawing attacked sites re-homes clients. This bench quantifies
those mechanics on the simulator.
"""

from conftest import SEED, emit

from repro.analysis.tables import render_matrix
from repro.core.experiments.anycast_study import AnycastSpec, run_anycast_study

PROBES = 250


def test_bench_extension_anycast(benchmark, output_dir):
    plain = run_anycast_study(probe_count=PROBES, seed=SEED)
    withdrawn = run_anycast_study(
        AnycastSpec(withdraw_after_min=20), probe_count=PROBES, seed=SEED
    )

    def regenerate():
        rows = [
            (
                "no mitigation",
                [
                    f"{plain.failure_during_attack('attacked'):.3f}",
                    f"{plain.failure_during_attack('healthy'):.3f}",
                ],
            ),
            (
                "withdraw attacked sites at +20min",
                [
                    f"{withdrawn.failure_during_attack('attacked'):.3f}",
                    f"{withdrawn.failure_during_attack('healthy'):.3f}",
                ],
            ),
        ]
        return render_matrix(
            "Extension: anycast (6 sites, 3 attacked at 90% loss), "
            "failures by pre-attack catchment",
            ["attacked", "healthy"],
            rows,
        )

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    emit(output_dir, "extension_anycast", text)

    # Uneven outcomes: the paper's root-event signature.
    assert plain.failure_during_attack("attacked") > 0.15
    assert plain.failure_during_attack("healthy") < 0.1
    # Withdrawal rescues the attacked catchment.
    assert (
        withdrawn.failure_during_attack("attacked")
        < plain.failure_during_attack("attacked") - 0.08
    )
