"""Figure 15 — Experiments D and G (Appendix D): latency quantiles.

Paper: D (50% on one NS) leaves latency untouched for most users; G
(75% loss, 300 s TTL) shows a visible latency increase.
"""

from conftest import emit

from repro.analysis.figures import render_series


def test_bench_fig15(benchmark, runs, output_dir):
    results = {key: runs.ddos(key) for key in ("D", "G")}

    def regenerate():
        sections = []
        for label, key in zip("ab", results):
            result = results[key]
            rows = [
                (
                    int(row.round_index * 10),
                    round(row.median_ms, 1),
                    round(row.mean_ms, 1),
                    round(row.p75_ms, 1),
                    round(row.p90_ms, 1),
                )
                for row in result.latency_series()
            ]
            sections.append(
                render_series(
                    f"Figure 15{label}: Experiment {key} latency (ms)",
                    rows,
                    ["minute", "median", "mean", "p75", "p90"],
                )
            )
        return "\n\n".join(sections)

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    emit(output_dir, "fig15", text)

    def series_of(key):
        return {row.round_index: row for row in results[key].latency_series()}

    d = series_of("D")
    # One-NS attack: median and p90 stay close to pre-attack levels.
    assert d[8].median_ms < d[1].median_ms * 2.5
    assert d[8].p90_ms < max(d[1].p90_ms * 4, 1200.0)

    g = series_of("G")
    # G: clear tail increase during the attack.
    assert g[8].p90_ms > g[1].p90_ms * 2
