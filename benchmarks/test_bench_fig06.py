"""Figure 6 — answers over time during complete authoritative failure."""

from conftest import emit

from repro.analysis.figures import render_timeseries_table


def attack_rounds(result):
    spec = result.spec
    start, end = spec.attack_window
    return [
        index
        for index in range(int(spec.total_duration_min))
        if start <= index * spec.round_seconds < end
    ]


def test_bench_fig06(benchmark, runs, output_dir):
    results = {key: runs.ddos(key) for key in ("A", "B", "C")}

    def regenerate():
        sections = []
        for key, result in results.items():
            sections.append(
                render_timeseries_table(
                    f"Figure 6{'abc'[ord(key) - ord('A')]}: Experiment {key} "
                    f"(TTL {result.spec.ttl}s, 100% loss)",
                    result.outcomes_by_round(),
                    ["ok", "servfail", "no_answer"],
                    attack_rounds=attack_rounds(result),
                )
            )
        return "\n\n".join(sections)

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    emit(output_dir, "fig06", text)

    # Experiment A: cache-only window serves 35-70%, near-zero after expiry.
    series_a = results["A"].outcomes_by_round()
    cache_only = series_a[3]
    ok = cache_only["ok"] / sum(cache_only.values())
    assert 0.25 < ok < 0.75
    expired = series_a[9]
    assert expired["ok"] / sum(expired.values()) < 0.1

    # Experiment B: served fraction decays through the attack as caches
    # (warmed at different times) expire.
    series_b = results["B"].outcomes_by_round()
    early_attack = series_b[6]["ok"] / sum(series_b[6].values())
    late_attack = series_b[11]["ok"] / sum(series_b[11].values())
    assert late_attack < early_attack
    # Recovery after the attack ends.
    recovered = series_b[14]["ok"] / sum(series_b[14].values())
    assert recovered > 0.8

    # Experiment C (TTL 1800): by 30 minutes into the attack all caches
    # have expired; only a small residue (serve-stale) remains.
    series_c = results["C"].outcomes_by_round()
    deep_attack = series_c[10]["ok"] / sum(series_c[10].values())
    assert deep_attack < 0.2
