"""Extension bench — the paper's §5.1 future work: queueing delay.

The paper emulates DDoS as pure loss and argues loss, not delay,
dominates during real events. This bench adds router-buffer queueing to
the attack model and separates the two effects:

* a pure-delay attack (0% loss, 400 ms mean queueing) leaves
  reliability intact but visibly stretches resolution latency;
* adding queueing to Experiment H's 90% loss barely moves the failure
  rate — retries only care whether the packet arrives before their
  timer, and most do.
"""

import dataclasses

from conftest import SEED, emit

from repro.analysis.tables import render_matrix
from repro.core.experiments import DDOS_EXPERIMENTS, run_ddos

PROBES = 250


def test_bench_extension_queueing(benchmark, output_dir):
    base_spec = DDOS_EXPERIMENTS["H"]
    specs = {
        "90% loss (paper)": base_spec,
        "queue only (400ms)": dataclasses.replace(
            base_spec, key="Hq0", loss_fraction=0.0, queue_delay=0.4
        ),
        "90% loss + 400ms queue": dataclasses.replace(
            base_spec, key="Hq4", queue_delay=0.4
        ),
    }
    results = {
        name: run_ddos(spec, probe_count=PROBES, seed=SEED)
        for name, spec in specs.items()
    }

    def regenerate():
        rows = []
        for name, result in results.items():
            latency = {
                row.round_index: row for row in result.latency_series()
            }
            mid = latency[8]
            pre = latency[2]
            rows.append(
                (
                    name,
                    [
                        f"{result.failure_fraction_during_attack():.3f}",
                        f"{pre.mean_ms:.0f}",
                        f"{mid.mean_ms:.0f}",
                        f"{mid.p75_ms:.0f}",
                    ],
                )
            )
        return render_matrix(
            "Extension: queueing delay vs loss at the targets (Exp. H base)",
            ["fail-ddos", "pre-mean-ms", "mid-mean-ms", "mid-p75-ms"],
            rows,
        )

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    emit(output_dir, "extension_queueing", text)

    def mid_round(name):
        return {row.round_index: row for row in results[name].latency_series()}[8]

    def pre_round(name):
        return {row.round_index: row for row in results[name].latency_series()}[2]

    queue_only = results["queue only (400ms)"]
    # Pure delay: reliability essentially unharmed...
    assert (
        queue_only.failure_fraction_during_attack()
        < queue_only.failure_fraction_before_attack() + 0.08
    )
    # ...but latency rises clearly against the same run's pre-attack rounds.
    assert mid_round("queue only (400ms)").mean_ms > (
        pre_round("queue only (400ms)").mean_ms * 2
    )

    # Loss + queueing: failure rate within a few points of loss alone
    # (loss dominates reliability, the paper's argument).
    base = results["90% loss (paper)"]
    combined = results["90% loss + 400ms queue"]
    assert (
        abs(
            combined.failure_fraction_during_attack()
            - base.failure_fraction_during_attack()
        )
        < 0.12
    )
